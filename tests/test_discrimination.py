"""Tests for the edit-distance discrimination stage."""

import numpy as np
import pytest

from repro.distance.discrimination import EditDistanceDiscriminator
from repro.exceptions import IdentificationError
from repro.features.fingerprint import Fingerprint
from repro.features.packet_features import FEATURE_COUNT


def fingerprint_from_sizes(sizes, device_type=None):
    rows = []
    for size in sizes:
        row = [0] * FEATURE_COUNT
        row[18] = size
        rows.append(row)
    return Fingerprint.from_feature_rows(rows, device_type=device_type, deduplicate=False)


class TestScoreType:
    def test_zero_score_for_identical_references(self):
        target = fingerprint_from_sizes([1, 2, 3, 4])
        references = [fingerprint_from_sizes([1, 2, 3, 4]) for _ in range(5)]
        discriminator = EditDistanceDiscriminator(rng=np.random.default_rng(0))
        score = discriminator.score_type(target, "typeA", references)
        assert score.score == 0.0
        assert score.comparisons == 5

    def test_score_bounded_by_reference_count(self):
        target = fingerprint_from_sizes([1, 2, 3])
        references = [fingerprint_from_sizes([9, 8, 7]) for _ in range(5)]
        discriminator = EditDistanceDiscriminator(rng=np.random.default_rng(0))
        score = discriminator.score_type(target, "typeA", references)
        assert 0.0 <= score.score <= 5.0

    def test_uses_at_most_references_per_type(self):
        target = fingerprint_from_sizes([1, 2])
        references = [fingerprint_from_sizes([1, 2]) for _ in range(20)]
        discriminator = EditDistanceDiscriminator(references_per_type=5, rng=np.random.default_rng(0))
        assert discriminator.score_type(target, "t", references).comparisons == 5

    def test_fewer_references_than_requested(self):
        target = fingerprint_from_sizes([1, 2])
        references = [fingerprint_from_sizes([1, 2])] * 2
        discriminator = EditDistanceDiscriminator(references_per_type=5, rng=np.random.default_rng(0))
        assert discriminator.score_type(target, "t", references).comparisons == 2

    def test_empty_references_rejected(self):
        discriminator = EditDistanceDiscriminator(rng=np.random.default_rng(0))
        with pytest.raises(IdentificationError):
            discriminator.score_type(fingerprint_from_sizes([1]), "t", [])

    def test_invalid_reference_count(self):
        with pytest.raises(IdentificationError):
            EditDistanceDiscriminator(references_per_type=0)


class TestDiscriminate:
    def test_picks_closest_type(self):
        target = fingerprint_from_sizes([1, 2, 3, 4, 5])
        candidates = {
            "near": [fingerprint_from_sizes([1, 2, 3, 4, 6]) for _ in range(5)],
            "far": [fingerprint_from_sizes([9, 9, 9]) for _ in range(5)],
        }
        discriminator = EditDistanceDiscriminator(rng=np.random.default_rng(0))
        winner, scores = discriminator.discriminate(target, candidates)
        assert winner == "near"
        assert scores[0].device_type == "near"
        assert scores[0].score < scores[1].score

    def test_scores_sorted_ascending(self):
        target = fingerprint_from_sizes([1, 2, 3])
        candidates = {
            "a": [fingerprint_from_sizes([1, 2, 3])],
            "b": [fingerprint_from_sizes([4, 5, 6])],
            "c": [fingerprint_from_sizes([1, 2, 9])],
        }
        discriminator = EditDistanceDiscriminator(rng=np.random.default_rng(0))
        _, scores = discriminator.discriminate(target, candidates)
        values = [score.score for score in scores]
        assert values == sorted(values)

    def test_no_candidates_rejected(self):
        discriminator = EditDistanceDiscriminator(rng=np.random.default_rng(0))
        with pytest.raises(IdentificationError):
            discriminator.discriminate(fingerprint_from_sizes([1]), {})

    def test_single_candidate(self):
        target = fingerprint_from_sizes([1, 2])
        discriminator = EditDistanceDiscriminator(rng=np.random.default_rng(0))
        winner, scores = discriminator.discriminate(target, {"only": [fingerprint_from_sizes([3, 4])]})
        assert winner == "only"
        assert len(scores) == 1
