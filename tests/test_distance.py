"""Tests for the Damerau-Levenshtein edit distance."""

import pytest

from repro.distance.damerau_levenshtein import damerau_levenshtein, normalized_damerau_levenshtein
from repro.exceptions import FingerprintError


class TestAbsoluteDistance:
    def test_identical(self):
        assert damerau_levenshtein("abcdef", "abcdef") == 0

    def test_empty_sequences(self):
        assert damerau_levenshtein("", "") == 0
        assert damerau_levenshtein("abc", "") == 3
        assert damerau_levenshtein("", "abcd") == 4

    def test_substitution(self):
        assert damerau_levenshtein("abc", "axc") == 1

    def test_insertion_and_deletion(self):
        assert damerau_levenshtein("abc", "abxc") == 1
        assert damerau_levenshtein("abxc", "abc") == 1

    def test_transposition_counts_one(self):
        assert damerau_levenshtein("abcd", "abdc") == 1
        assert damerau_levenshtein("ca", "ac") == 1

    def test_classic_example(self):
        assert damerau_levenshtein("kitten", "sitting") == 3

    def test_works_on_tuples(self):
        first = [(1, 0), (0, 1), (1, 1)]
        second = [(1, 0), (1, 1)]
        assert damerau_levenshtein(first, second) == 1

    def test_symmetry(self):
        assert damerau_levenshtein("setup", "steup") == damerau_levenshtein("steup", "setup")

    def test_triangle_inequality_examples(self):
        a, b, c = "dhcpdns", "dhcpntp", "dnsntp"
        assert damerau_levenshtein(a, c) <= damerau_levenshtein(a, b) + damerau_levenshtein(b, c)


class TestNormalizedDistance:
    def test_bounds(self):
        assert normalized_damerau_levenshtein("abc", "abc") == 0.0
        assert normalized_damerau_levenshtein("abc", "xyz") == 1.0

    def test_division_by_longest(self):
        assert normalized_damerau_levenshtein("ab", "abcd") == pytest.approx(0.5)

    def test_both_empty_rejected(self):
        with pytest.raises(FingerprintError):
            normalized_damerau_levenshtein("", "")

    def test_one_empty(self):
        # The documented contract: exactly one empty sequence is maximal
        # dissimilarity, regardless of which side is empty or how long the
        # other side is.
        assert normalized_damerau_levenshtein("", "ab") == 1.0
        assert normalized_damerau_levenshtein("ab", "") == 1.0
        assert normalized_damerau_levenshtein("", "x" * 100) == 1.0

    def test_interning_matches_plain_tuple_equality(self):
        # Packet-column symbols with long shared prefixes (the interning
        # fast path) must give the same distances as plain comparison.
        base = (0, 0, 1, 0, 0, 0, 1, 0, 0, 1) + (0,) * 12
        a = [base + (100,), base + (200,), base + (100,)]
        b = [base + (200,), base + (100,), base + (100,)]
        assert damerau_levenshtein(a, a) == 0
        assert damerau_levenshtein(a, b) == 1  # one adjacent transposition
        assert normalized_damerau_levenshtein(a, b) == pytest.approx(1 / 3)
