"""The docs site must stay internally consistent (nav, links, anchors).

CI additionally runs ``mkdocs build --strict``; this test keeps the
cheaper, dependency-free checks (``tools/check_docs.py``) in the tier-1
suite so a broken link never waits for the docs job to be noticed.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


def test_docs_tree_exists():
    assert (REPO_ROOT / "mkdocs.yml").exists()
    for page in ("index.md", "architecture.md", "operations.md", "lifecycle.md"):
        assert (REPO_ROOT / "docs" / page).exists(), page


def test_nav_and_links_are_clean():
    checker = load_checker()
    assert checker.collect_errors() == []


def test_nav_covers_every_docs_page():
    checker = load_checker()
    pages = set(checker.nav_pages())
    on_disk = {
        str(path.relative_to(REPO_ROOT / "docs"))
        for path in (REPO_ROOT / "docs").glob("**/*.md")
    }
    assert on_disk == pages


def test_readme_is_a_quickstart_not_a_manual():
    # The deep sections moved into docs/; the README stays a quickstart
    # with pointers.  Guard the slimming so it does not silently regrow.
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    assert "docs/operations.md" in readme
    assert "docs/lifecycle.md" in readme
    assert len(readme.splitlines()) < 120
