"""Docstring examples are executable documentation; they must not rot.

Runs doctest over the public-API modules that carry runnable examples.
CI mirrors this with ``pytest --doctest-modules`` on the same list, so
the examples are exercised both in the tier-1 suite and the docs job.
"""

from __future__ import annotations

import doctest

import pytest

import repro.features.fingerprint
import repro.identification.autopilot
import repro.identification.lifecycle
import repro.streaming.dispatcher

DOCTESTED_MODULES = [
    repro.features.fingerprint,
    repro.identification.autopilot,
    repro.identification.lifecycle,
    repro.streaming.dispatcher,
]


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES, ids=lambda module: module.__name__
)
def test_module_doctests_pass(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} lost its runnable examples"
    assert result.failed == 0


def test_public_api_is_documented():
    """Every re-exported name on the package root carries a docstring."""
    import repro

    undocumented = []
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if isinstance(obj, str):  # UNKNOWN_DEVICE_TYPE, __version__
            continue
        if not (getattr(obj, "__doc__", None) or "").strip():
            undocumented.append(name)
    assert undocumented == []
