"""Tests for enforcement rules, device records and the rule cache."""

import pytest

from repro.exceptions import EnforcementError
from repro.gateway.enforcement import DeviceRecord, EnforcementRule, NetworkOverlay
from repro.gateway.rule_cache import EnforcementRuleCache
from repro.net.addresses import MACAddress
from repro.sdn.openflow import FlowAction
from repro.security_service.isolation import IsolationLevel

MAC = MACAddress.from_string("13:73:74:7e:a9:c2")
OTHER = MACAddress.from_string("02:00:00:00:00:77")


class TestEnforcementRule:
    def test_restricted_rule_like_fig2(self):
        rule = EnforcementRule(
            device_mac=MAC,
            isolation_level=IsolationLevel.RESTRICTED,
            allowed_destinations=("52.28.10.1", "52.28.10.2"),
            device_type="Device X",
        )
        assert rule.permits_destination("52.28.10.1")
        assert not rule.permits_destination("8.8.8.8")
        assert len(rule.rule_hash) == 16

    def test_rule_hash_stable_and_distinct(self):
        rule_a = EnforcementRule(MAC, IsolationLevel.STRICT)
        rule_b = EnforcementRule(MAC, IsolationLevel.STRICT)
        rule_c = EnforcementRule(MAC, IsolationLevel.RESTRICTED, ("1.1.1.1",))
        assert rule_a.rule_hash == rule_b.rule_hash
        assert rule_a.rule_hash != rule_c.rule_hash

    def test_trusted_rule_cannot_carry_allow_list(self):
        with pytest.raises(EnforcementError):
            EnforcementRule(MAC, IsolationLevel.TRUSTED, allowed_destinations=("1.2.3.4",))

    def test_flow_rule_translation_trusted(self):
        rules = EnforcementRule(MAC, IsolationLevel.TRUSTED).to_flow_rules()
        assert len(rules) == 1
        assert rules[0].action is FlowAction.FORWARD

    def test_flow_rule_translation_restricted(self):
        rules = EnforcementRule(
            MAC, IsolationLevel.RESTRICTED, allowed_destinations=("1.1.1.1", "2.2.2.2")
        ).to_flow_rules()
        forwards = [rule for rule in rules if rule.action is FlowAction.FORWARD]
        fallbacks = [rule for rule in rules if rule.action is FlowAction.SEND_TO_CONTROLLER]
        assert len(forwards) == 2
        assert len(fallbacks) == 1
        assert all(rule.priority > fallbacks[0].priority for rule in forwards)

    def test_flow_rule_translation_strict(self):
        rules = EnforcementRule(MAC, IsolationLevel.STRICT).to_flow_rules()
        assert len(rules) == 1
        assert rules[0].action is FlowAction.SEND_TO_CONTROLLER

    def test_estimated_size_grows_with_destinations(self):
        small = EnforcementRule(MAC, IsolationLevel.STRICT)
        large = EnforcementRule(MAC, IsolationLevel.RESTRICTED, tuple(f"10.0.0.{i}" for i in range(8)))
        assert large.estimated_size_bytes > small.estimated_size_bytes


class TestNetworkOverlay:
    def test_overlay_for_isolation_level(self):
        assert NetworkOverlay.for_isolation_level(IsolationLevel.TRUSTED) is NetworkOverlay.TRUSTED
        assert NetworkOverlay.for_isolation_level(IsolationLevel.RESTRICTED) is NetworkOverlay.UNTRUSTED
        assert NetworkOverlay.for_isolation_level(IsolationLevel.STRICT) is NetworkOverlay.UNTRUSTED


class TestDeviceRecord:
    def test_defaults_are_untrusted(self):
        record = DeviceRecord(mac=MAC)
        assert record.isolation_level is IsolationLevel.STRICT
        assert record.overlay is NetworkOverlay.UNTRUSTED
        assert not record.is_identified

    def test_touch_updates_last_seen(self):
        record = DeviceRecord(mac=MAC, last_seen_at=5.0)
        record.touch(9.0)
        record.touch(7.0)
        assert record.last_seen_at == 9.0


class TestRuleCache:
    def test_store_and_lookup(self):
        cache = EnforcementRuleCache()
        rule = EnforcementRule(MAC, IsolationLevel.STRICT)
        cache.store(rule)
        assert cache.lookup(MAC) is rule
        assert cache.lookup(OTHER) is None
        assert cache.lookups == 2
        assert cache.hits == 1
        assert cache.hit_rate == 0.5
        assert MAC in cache
        assert len(cache) == 1

    def test_replacement_keeps_single_entry(self):
        cache = EnforcementRuleCache()
        cache.store(EnforcementRule(MAC, IsolationLevel.STRICT))
        cache.store(EnforcementRule(MAC, IsolationLevel.TRUSTED))
        assert len(cache) == 1
        assert cache.lookup(MAC).isolation_level is IsolationLevel.TRUSTED

    def test_replacement_not_counted_as_insertion(self):
        # A rule upgrade of an already-cached device is a replacement;
        # counting it under insertions overstated cache growth.
        cache = EnforcementRuleCache()
        cache.store(EnforcementRule(MAC, IsolationLevel.STRICT))
        cache.store(EnforcementRule(MAC, IsolationLevel.TRUSTED))
        cache.store(EnforcementRule(OTHER, IsolationLevel.STRICT))
        assert cache.insertions == 2
        assert cache.replacements == 1

    def test_remove(self):
        cache = EnforcementRuleCache()
        cache.store(EnforcementRule(MAC, IsolationLevel.STRICT))
        assert cache.remove(MAC)
        assert not cache.remove(MAC)
        assert len(cache) == 0

    def test_lru_eviction_with_max_entries(self):
        cache = EnforcementRuleCache(max_entries=2)
        first = MACAddress(1)
        second = MACAddress(2)
        third = MACAddress(3)
        cache.store(EnforcementRule(first, IsolationLevel.STRICT), now=1.0)
        cache.store(EnforcementRule(second, IsolationLevel.STRICT), now=2.0)
        cache.lookup(first, now=3.0)
        cache.store(EnforcementRule(third, IsolationLevel.STRICT), now=4.0)
        assert first in cache
        assert second not in cache
        assert third in cache
        assert cache.evictions == 1

    def test_evict_stale(self):
        cache = EnforcementRuleCache()
        cache.store(EnforcementRule(MACAddress(1), IsolationLevel.STRICT), now=0.0)
        cache.store(EnforcementRule(MACAddress(2), IsolationLevel.STRICT), now=100.0)
        removed = cache.evict_stale(now=150.0, max_idle_seconds=60.0)
        assert removed == 1
        assert len(cache) == 1
        with pytest.raises(EnforcementError):
            cache.evict_stale(now=0.0, max_idle_seconds=-1)

    def test_memory_estimate(self):
        cache = EnforcementRuleCache()
        assert cache.estimated_memory_bytes == 0
        cache.store(EnforcementRule(MAC, IsolationLevel.RESTRICTED, ("1.1.1.1",)))
        assert cache.estimated_memory_bytes > 0

    def test_invalid_max_entries(self):
        with pytest.raises(EnforcementError):
            EnforcementRuleCache(max_entries=0)

    def test_rules_snapshot(self):
        cache = EnforcementRuleCache()
        cache.store(EnforcementRule(MAC, IsolationLevel.STRICT))
        assert len(cache.rules()) == 1
