"""Tests for the evaluation harness (table/figure runners and reporting)."""

import numpy as np
import pytest

from repro.eval.experiments import (
    evaluate_identification,
    run_ablation,
    run_cpu_vs_flows,
    run_latency_table,
    run_latency_vs_flows,
    run_memory_vs_rules,
    run_overhead_table,
    run_timing,
    table_iii_confusion,
)
from repro.eval.reporting import (
    format_confusion_matrix,
    format_fig5,
    format_latency_table,
    format_overhead_table,
    format_series,
    format_table,
    format_timing_table,
)


@pytest.fixture(scope="module")
def small_evaluation(request):
    dataset = request.getfixturevalue("small_dataset")
    return evaluate_identification(dataset, n_splits=3, n_estimators=6, random_state=0)


class TestIdentificationEvaluation:
    def test_every_fingerprint_predicted(self, small_dataset, small_evaluation):
        assert len(small_evaluation.y_true) == len(small_dataset)
        assert len(small_evaluation.y_pred) == len(small_dataset)

    def test_reasonable_overall_accuracy(self, small_evaluation):
        # Paper-scale accuracy is ~0.815; the reduced test configuration
        # must still be clearly better than random (1/9 = 0.11).
        assert small_evaluation.overall_accuracy > 0.5

    def test_distinct_devices_highly_accurate(self, small_evaluation):
        per_type = small_evaluation.per_type_accuracy
        assert per_type["Aria"] >= 0.7
        assert per_type["HueBridge"] >= 0.7

    def test_confusable_family_lower_accuracy_than_distinct(self, small_evaluation):
        per_type = small_evaluation.per_type_accuracy
        family_mean = np.mean([per_type["SmarterCoffee"], per_type["iKettle2"]])
        distinct_mean = np.mean([per_type["Aria"], per_type["HueBridge"]])
        assert family_mean <= distinct_mean

    def test_discrimination_statistics(self, small_evaluation):
        assert 0.0 <= small_evaluation.discrimination_fraction <= 1.0
        if small_evaluation.needed_discrimination:
            assert small_evaluation.mean_candidates_when_ambiguous >= 2.0

    def test_confusion_matrix_restriction(self, small_evaluation):
        matrix, labels = table_iii_confusion(
            small_evaluation, devices=("TP-LinkPlugHS110", "TP-LinkPlugHS100")
        )
        assert matrix.shape == (2, 2)
        assert labels == ["TP-LinkPlugHS110", "TP-LinkPlugHS100"]
        assert matrix.sum() > 0


class TestTimingExperiment:
    def test_rows_present_and_positive(self, small_dataset, trained_identifier):
        summary = run_timing(small_dataset, identifier=trained_identifier, samples=10)
        assert "1 Classification (Random Forest)" in summary.rows
        assert "1 Discrimination (edit distance)" in summary.rows
        assert "Type Identification" in summary.rows
        for mean, stdev in summary.rows.values():
            assert mean >= 0.0
            assert stdev >= 0.0

    def test_composite_rows_scale(self, small_dataset, trained_identifier):
        summary = run_timing(small_dataset, identifier=trained_identifier, samples=10)
        single = summary.mean_of("1 Classification (Random Forest)")
        all_types = summary.mean_of(
            f"{len(trained_identifier.known_device_types)} Classifications (Random Forest)"
        )
        assert all_types > single


class TestEnforcementExperiments:
    def test_latency_table_shape(self):
        table = run_latency_table(iterations=5, seed=0)
        assert len(table.rows) == 9
        for source, destination, f_mean, f_std, p_mean, p_std in table.rows:
            assert source in ("D1", "D2", "D3")
            assert f_mean > 0 and p_mean > 0
            # Filtering overhead must stay small (the paper's headline claim).
            assert abs(f_mean - p_mean) / p_mean < 0.25

    def test_latency_table_row_lookup(self):
        table = run_latency_table(iterations=5, seed=0)
        row = table.row("D1", "D4")
        assert len(row) == 4
        with pytest.raises(KeyError):
            table.row("D9", "D4")

    def test_overhead_table_in_paper_range(self):
        table = run_overhead_table(iterations=10, repetitions=5, seed=1)
        assert set(table.rows) == {"D1D2 Latency", "D1D3 Latency", "CPU utilization", "Memory usage"}
        assert -2.0 < table.overhead_of("D1D2 Latency") < 15.0
        assert 0.0 <= table.overhead_of("CPU utilization") < 5.0
        assert 0.0 <= table.overhead_of("Memory usage") < 20.0

    def test_latency_vs_flows_series(self):
        series = run_latency_vs_flows(flow_counts=(20, 80, 140), iterations=5, seed=0)
        assert len(series.x_values) == 3
        assert set(series.series) == {
            "D1-D2 w/ filtering",
            "D1-D2 w/o filtering",
            "D1-D3 w/ filtering",
            "D1-D3 w/o filtering",
        }
        for values in series.series.values():
            assert len(values) == 3
            assert all(value > 0 for value in values)

    def test_cpu_vs_flows_monotone_trend(self):
        series = run_cpu_vs_flows(flow_counts=(0, 150), samples_per_point=10, seed=0)
        with_filtering = series.series_of("With Filtering")
        without_filtering = series.series_of("Without Filtering")
        assert with_filtering[1] > with_filtering[0]
        assert without_filtering[1] > without_filtering[0]
        assert with_filtering[1] < 60  # Fig. 6b stays well below saturation

    def test_memory_vs_rules_grows_only_with_filtering(self):
        series = run_memory_vs_rules(rule_counts=(0, 20000), samples_per_point=5, seed=0)
        filtering = series.series_of("With Filtering")
        plain = series.series_of("Without Filtering")
        assert filtering[1] - filtering[0] > 20
        assert abs(plain[1] - plain[0]) < 10

    def test_ablation(self, small_dataset):
        result = run_ablation(small_dataset, n_splits=3, n_estimators=5, random_state=0)
        assert "full pipeline" in result.accuracies
        assert "without edit-distance discrimination" in result.accuracies
        assert all(0.0 <= accuracy <= 1.0 for accuracy in result.accuracies.values())


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_fig5(self):
        text = format_fig5({"Aria": 1.0, "iKettle2": 0.45}, overall=0.8)
        assert "Aria" in text
        assert "GLOBAL" in text

    def test_format_confusion(self):
        matrix = np.array([[5, 1], [2, 4]])
        text = format_confusion_matrix(matrix, ["A", "B"])
        assert "1 A" in text
        assert "2 B" in text

    def test_format_timing(self):
        text = format_timing_table({"step": (1.5, 0.2)})
        assert "1.500 ms" in text

    def test_format_latency_and_overhead(self):
        latency = format_latency_table([("D1", "D4", 24.8, 1.4, 24.5, 1.4)])
        overhead = format_overhead_table({"CPU utilization": (0.63, 1.8)})
        assert "D1" in latency
        assert "+0.63%" in overhead

    def test_format_series(self):
        text = format_series("flows", [10, 20], {"With Filtering": [1.0, 2.0], "Without": [1.0, 1.5]})
        assert "flows" in text
        assert "With Filtering" in text
