"""Tests for the variable-length (F) and fixed-length (F') fingerprints."""

import numpy as np
import pytest

from repro.exceptions import FingerprintError
from repro.features.fingerprint import FIXED_PACKET_COUNT, FIXED_VECTOR_SIZE, Fingerprint
from repro.features.packet_features import FEATURE_COUNT


def row(value: int) -> list[int]:
    """A synthetic feature row whose identity is determined by ``value``."""
    vector = [0] * FEATURE_COUNT
    vector[18] = value  # packet_size slot
    return vector


class TestConstruction:
    def test_consecutive_duplicates_removed(self):
        fingerprint = Fingerprint.from_feature_rows([row(1), row(1), row(2), row(2), row(1)])
        assert fingerprint.packet_count == 3
        assert [int(vector[18]) for vector in fingerprint.vectors] == [1, 2, 1]

    def test_deduplication_can_be_disabled(self):
        fingerprint = Fingerprint.from_feature_rows([row(1), row(1)], deduplicate=False)
        assert fingerprint.packet_count == 2

    def test_empty_fingerprint(self):
        fingerprint = Fingerprint.from_feature_rows([])
        assert fingerprint.packet_count == 0
        assert len(fingerprint) == 0

    def test_wrong_width_rejected(self):
        with pytest.raises(FingerprintError):
            Fingerprint(vectors=np.zeros((3, 5), dtype=np.int64))

    def test_matrix_orientation(self):
        fingerprint = Fingerprint.from_feature_rows([row(1), row(2)])
        assert fingerprint.vectors.shape == (2, FEATURE_COUNT)
        assert fingerprint.matrix.shape == (FEATURE_COUNT, 2)

    def test_from_packets(self, aria_trace):
        fingerprint = Fingerprint.from_packets(aria_trace.packets, device_type="Aria")
        assert fingerprint.device_type == "Aria"
        assert fingerprint.packet_count > 4
        assert fingerprint.packet_count <= len(aria_trace.packets)


class TestFixedVector:
    def test_size_is_276(self):
        assert FIXED_VECTOR_SIZE == 276
        fingerprint = Fingerprint.from_feature_rows([row(i) for i in range(1, 20)])
        assert fingerprint.to_fixed_vector().shape == (276,)

    def test_zero_padding_when_short(self):
        fingerprint = Fingerprint.from_feature_rows([row(1), row(2)])
        fixed = fingerprint.to_fixed_vector()
        assert fixed[:FEATURE_COUNT].tolist() == row(1)
        assert fixed[FEATURE_COUNT : 2 * FEATURE_COUNT].tolist() == row(2)
        assert not np.any(fixed[2 * FEATURE_COUNT :])

    def test_only_unique_vectors_used(self):
        # Alternating duplicates survive consecutive dedup but must appear
        # only once each in F'.
        rows = [row(1), row(2), row(1), row(2), row(3)]
        fingerprint = Fingerprint.from_feature_rows(rows)
        fixed = fingerprint.to_fixed_vector()
        sizes = [int(fixed[i * FEATURE_COUNT + 18]) for i in range(FIXED_PACKET_COUNT)]
        assert sizes[:3] == [1, 2, 3]
        assert sizes[3:] == [0] * (FIXED_PACKET_COUNT - 3)

    def test_truncated_to_first_12_unique(self):
        fingerprint = Fingerprint.from_feature_rows([row(i) for i in range(1, 40)])
        fixed = fingerprint.to_fixed_vector()
        assert int(fixed[18]) == 1
        assert int(fixed[(FIXED_PACKET_COUNT - 1) * FEATURE_COUNT + 18]) == FIXED_PACKET_COUNT

    def test_custom_packet_count(self):
        fingerprint = Fingerprint.from_feature_rows([row(i) for i in range(1, 10)])
        assert fingerprint.to_fixed_vector(packet_count=4).shape == (4 * FEATURE_COUNT,)

    def test_invalid_packet_count(self):
        fingerprint = Fingerprint.from_feature_rows([row(1)])
        with pytest.raises(FingerprintError):
            fingerprint.to_fixed_vector(packet_count=0)


class TestSymbolSequence:
    def test_symbols_are_hashable_and_ordered(self):
        fingerprint = Fingerprint.from_feature_rows([row(1), row(2)])
        symbols = fingerprint.as_symbol_sequence()
        assert len(symbols) == 2
        assert isinstance(symbols[0], tuple)
        assert symbols[0] != symbols[1]
        assert hash(symbols[0]) is not None

    def test_equality(self):
        first = Fingerprint.from_feature_rows([row(1), row(2)], device_type="X")
        second = Fingerprint.from_feature_rows([row(1), row(2)], device_type="X")
        third = Fingerprint.from_feature_rows([row(1), row(3)], device_type="X")
        assert first == second
        assert first != third

    def test_repr_contains_type(self):
        fingerprint = Fingerprint.from_feature_rows([row(1)], device_type="Aria")
        assert "Aria" in repr(fingerprint)
