"""Fleet serving: the gateway facade, hot model swaps and epoch convergence.

Three surfaces under test:

* ``repro.api`` -- the declarative :class:`GatewayConfig` /
  :func:`build_gateway` facade: construction matrix (minimal, full,
  invalid-with-named-fields), the wiring guarantees the hand-built path
  was prone to missing, and the :meth:`GatewayHandle.swap_bundle` hot
  swap (in-flight fingerprints survive, verdicts carry the right
  revision, replays are counted no-ops);
* ``repro.fleet.channel`` -- push watermark discipline, idempotent
  replay, rollback-as-forward-push, late-joiner catch-up;
* the end-to-end convergence property: after one push + sync, every
  member serves the same epoch and produces bit-identical verdicts for
  the same traffic (the PR 5 determinism guarantee doing fleet duty).
"""

from __future__ import annotations

import pytest

from repro.api import GatewayConfig, GatewayHandle, build_gateway
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.exceptions import (
    ConfigError,
    FleetError,
    LifecycleError,
    ObservabilityError,
)
from repro.features.fingerprint import Fingerprint
from repro.fleet import FleetCoordinator, FleetHealthView
from repro.identification.identifier import DeviceTypeIdentifier, UNKNOWN_DEVICE_TYPE
from repro.identification.model_store import save_identifier
from repro.net.addresses import MACAddress
from repro.obs import replay_ledger
from repro.streaming import SimulatedSource
from repro.streaming.backpressure import BackpressurePolicy

from tests.conftest import SMALL_DEVICE_SET, make_device_mac


# --------------------------------------------------------------------- #
# Shared helpers and fixtures.
# --------------------------------------------------------------------- #
def probe_fingerprints(count: int = 4, seed: int = 77):
    """(mac, fingerprint) pairs of known device models."""
    simulator = SetupTrafficSimulator(seed=seed)
    probes = []
    for index in range(count):
        profile = DEVICE_CATALOG[SMALL_DEVICE_SET[index % len(SMALL_DEVICE_SET)]]
        mac = make_device_mac(index + 1)
        trace = simulator.simulate(profile, device_mac=mac)
        probes.append((mac, Fingerprint.from_packets(trace.packets)))
    return probes


def verdict_signature(identified):
    """Everything a fleet-agreement check can observe about one verdict."""
    return (
        str(identified.mac),
        identified.result.device_type,
        identified.result.matched_types,
        identified.result.discrimination_scores,
    )


@pytest.fixture()
def bundle_v1(trained_identifier, tmp_path):
    path = tmp_path / "model-v1.json"
    save_identifier(path, trained_identifier, epoch=1)
    return path


@pytest.fixture()
def identifier_v2(small_dataset, trained_identifier):
    v2 = DeviceTypeIdentifier.train(small_dataset.to_registry(), random_state=8)
    v2.revision = trained_identifier.revision + 1
    return v2


@pytest.fixture()
def bundle_v2(identifier_v2, tmp_path):
    path = tmp_path / "model-v2.json"
    save_identifier(path, identifier_v2, epoch=2)
    return path


# --------------------------------------------------------------------- #
# GatewayConfig validation + build_gateway wiring.
# --------------------------------------------------------------------- #
class TestGatewayConfig:
    def test_minimal_config_builds_a_working_gateway(self, trained_identifier):
        handle = build_gateway(GatewayConfig(identifier=trained_identifier))
        assert isinstance(handle, GatewayHandle)
        mac, fingerprint = probe_fingerprints(1)[0]
        identified = handle.identify(mac, fingerprint)
        assert len(identified) == 1
        assert identified[0].result.device_type != UNKNOWN_DEVICE_TYPE
        assert handle.gateway.device_record(mac) is not None
        assert handle.snapshot()["dispatcher.identified"] == 1

    def test_full_config_wires_every_cross_reference(self, bundle_v1, tmp_path):
        handle = build_gateway(
            GatewayConfig(
                bundle_path=bundle_v1,
                name="gw-full",
                max_batch=8,
                queue_capacity=32,
                backpressure="drop",
                cache_capacity=128,
                shards=2,
                sticky=False,
                store_path=tmp_path / "store.json",
                quarantine_path=tmp_path / "quarantine.json",
                autopilot=True,
                ledger_path=tmp_path / "ledger.ndjson",
            )
        )
        # The facade made every cross-reference the hand-wired path
        # required the caller to remember.
        assert handle.lifecycle is not None
        assert handle.lifecycle.sink is handle.sink
        assert handle.sink.lifecycle is handle.lifecycle
        assert handle.gateway.lifecycle is handle.lifecycle
        assert handle.autopilot is not None
        assert handle.autopilot.coordinator is handle.lifecycle
        assert handle.cache is not None
        assert handle.cache.epoch is handle.lifecycle.epoch
        assert handle.dispatcher.cache is handle.cache
        assert handle.dispatcher.queue.policy is BackpressurePolicy.DROP
        # One hub, single-sourced through every layer.
        hub = handle.observability
        assert handle.dispatcher.observability is hub
        assert handle.sink.observability is hub
        assert handle.lifecycle.observability is hub
        assert handle.autopilot.observability is hub
        assert hub.ledger is not None
        # The bundle's epoch stamp was adopted.
        assert handle.epoch == 1
        handle.close()

    def test_missing_model_source_names_the_fields(self):
        with pytest.raises(ConfigError, match="identifier/bundle_path/resume"):
            build_gateway(GatewayConfig())

    def test_conflicting_model_sources_rejected(self, trained_identifier, bundle_v1):
        with pytest.raises(ConfigError, match="mutually exclusive"):
            build_gateway(
                GatewayConfig(identifier=trained_identifier, bundle_path=bundle_v1)
            )

    def test_invalid_numeric_fields_all_named_in_one_error(self, trained_identifier):
        with pytest.raises(ConfigError) as excinfo:
            build_gateway(
                GatewayConfig(
                    identifier=trained_identifier,
                    max_batch=0,
                    queue_capacity=-1,
                    cache_capacity=-5,
                    shards=0,
                )
            )
        message = str(excinfo.value)
        for field in ("max_batch", "queue_capacity", "cache_capacity", "shards"):
            assert field in message

    def test_autopilot_requires_lifecycle(self, trained_identifier):
        with pytest.raises(ConfigError, match="autopilot"):
            build_gateway(
                GatewayConfig(
                    identifier=trained_identifier, autopilot=True, lifecycle=False
                )
            )

    def test_ledger_requires_observability(self, trained_identifier, tmp_path):
        with pytest.raises(ConfigError, match="ledger_path"):
            build_gateway(
                GatewayConfig(
                    identifier=trained_identifier,
                    observability=False,
                    ledger_path=tmp_path / "ledger.ndjson",
                )
            )

    def test_resume_requires_store_path(self):
        with pytest.raises(ConfigError, match="store_path"):
            build_gateway(GatewayConfig(resume=True))

    def test_unknown_backpressure_string_rejected(self, trained_identifier):
        with pytest.raises(ConfigError, match="backpressure"):
            build_gateway(
                GatewayConfig(identifier=trained_identifier, backpressure="yolo")
            )

    def test_backpressure_accepts_policy_names(self, trained_identifier):
        handle = build_gateway(
            GatewayConfig(identifier=trained_identifier, backpressure="block")
        )
        assert handle.dispatcher.queue.policy is BackpressurePolicy.BLOCK

    def test_cache_capacity_zero_disables_caching(self, trained_identifier):
        handle = build_gateway(
            GatewayConfig(identifier=trained_identifier, cache_capacity=0)
        )
        assert handle.cache is None
        assert handle.dispatcher.cache is None

    def test_observability_false_means_no_snapshot(self, trained_identifier):
        handle = build_gateway(
            GatewayConfig(identifier=trained_identifier, observability=False)
        )
        assert handle.observability is None
        with pytest.raises(ObservabilityError, match="observability=False"):
            handle.snapshot()

    def test_run_without_source_names_the_field(self, trained_identifier):
        handle = build_gateway(GatewayConfig(identifier=trained_identifier))
        with pytest.raises(ConfigError, match="source"):
            handle.run_until_idle()

    def test_resume_rebuilds_the_stack_from_disk(self, trained_identifier, tmp_path):
        store = tmp_path / "store.json"
        quarantine = tmp_path / "quarantine.json"
        first = build_gateway(
            GatewayConfig(
                identifier=trained_identifier,
                store_path=store,
                quarantine_path=quarantine,
            )
        )
        first.lifecycle.save_snapshot()
        resumed = build_gateway(
            GatewayConfig(resume=True, store_path=store, quarantine_path=quarantine)
        )
        assert resumed.lifecycle is not None
        assert (
            resumed.identifier.known_device_types
            == trained_identifier.known_device_types
        )
        assert resumed.observability is not None
        assert resumed.lifecycle.observability is resumed.observability

    def test_run_until_idle_streams_and_enforces(self, trained_identifier, simulator):
        traces = [
            simulator.simulate(DEVICE_CATALOG[name], start_time=index * 3.0)
            for index, name in enumerate(["Aria", "HueBridge"])
        ]
        handle = build_gateway(GatewayConfig(identifier=trained_identifier))
        stats = handle.run_until_idle(SimulatedSource(traces=traces))
        assert stats.identified == 2
        assert handle.sink.enforced == 2
        assert handle.gateway.connected_device_count == 2


# --------------------------------------------------------------------- #
# Hot model swap on a live gateway.
# --------------------------------------------------------------------- #
class TestHotSwap:
    def test_in_flight_fingerprints_survive_and_use_the_new_model(
        self, trained_identifier, identifier_v2, bundle_v2, tmp_path
    ):
        handle = build_gateway(
            GatewayConfig(
                identifier=trained_identifier,
                max_batch=16,  # large: injected probes stay queued
                ledger_path=tmp_path / "ledger.ndjson",
            )
        )
        probes = probe_fingerprints(5)
        # Two verdicts delivered before the swap...
        for mac, fingerprint in probes[:2]:
            assert handle.identify(mac, fingerprint)
        # ...three more enqueued but NOT yet identified when the swap lands.
        for mac, fingerprint in probes[2:]:
            handle.identify(mac, fingerprint, flush=False)
        assert len(handle.dispatcher.queue) == 3

        report = handle.swap_bundle(bundle_v2)
        assert report.applied
        assert (report.previous_epoch, report.epoch) == (0, 2)
        assert report.revision == identifier_v2.revision
        assert handle.dispatcher.stats.swaps == 1

        # The queued fingerprints were not dropped: they drain through
        # the NEW model.
        drained = handle.pipeline.finish()
        assert sorted(str(item.mac) for item in drained) == sorted(
            str(mac) for mac, _ in probes[2:]
        )
        assert handle.dispatcher.stats.dropped == 0
        assert handle.dispatcher.stats.identified == 5

        # The ledger pins the revision history: pre-swap verdicts carry
        # the old revision, post-swap ones the new, with the apply
        # record in between.
        handle.close()
        records = replay_ledger(tmp_path / "ledger.ndjson").records
        verdicts = [r for r in records if r.kind == "verdict"]
        assert [r.identifier_revision for r in verdicts] == (
            [trained_identifier.revision] * 2 + [identifier_v2.revision] * 3
        )
        applies = [r for r in records if r.kind == "apply"]
        assert len(applies) == 1 and applies[0].detail["applied"] is True

    def test_swap_updates_every_model_consumer(
        self, trained_identifier, identifier_v2, bundle_v2
    ):
        handle = build_gateway(GatewayConfig(identifier=trained_identifier))
        handle.swap_bundle(bundle_v2)
        assert handle.dispatcher.identifier.revision == identifier_v2.revision
        assert handle.lifecycle.identifier.revision == identifier_v2.revision
        assert handle.security_service.identifier.revision == identifier_v2.revision
        assert handle.identifier.revision == identifier_v2.revision
        assert handle.epoch == 2

    def test_swap_invalidates_the_verdict_cache_by_epoch(
        self, trained_identifier, bundle_v2
    ):
        handle = build_gateway(GatewayConfig(identifier=trained_identifier))
        mac, fingerprint = probe_fingerprints(1)[0]
        handle.identify(mac, fingerprint)
        hit = handle.identify(mac, fingerprint)
        assert hit[0].from_cache
        handle.swap_bundle(bundle_v2)
        fresh = handle.identify(mac, fingerprint)
        assert not fresh[0].from_cache  # the old entry is stale by epoch

    def test_duplicate_swap_is_a_counted_no_op(self, trained_identifier, bundle_v2):
        handle = build_gateway(GatewayConfig(identifier=trained_identifier))
        first = handle.swap_bundle(bundle_v2)
        invalidations = handle.lifecycle.epoch.invalidations
        replay = handle.swap_bundle(bundle_v2)
        assert first.applied and not replay.applied
        assert replay.reason == "duplicate"
        assert handle.duplicate_swaps == 1 and handle.applied_swaps == 1
        assert handle.epoch == 2
        # A replay must not re-invalidate the caches.
        assert handle.lifecycle.epoch.invalidations == invalidations

    def test_swap_backwards_raises(self, trained_identifier, bundle_v1, bundle_v2):
        handle = build_gateway(GatewayConfig(identifier=trained_identifier))
        handle.swap_bundle(bundle_v2)
        with pytest.raises(FleetError, match="older epoch"):
            handle.swap_bundle(bundle_v1)

    def test_same_epoch_different_revision_requires_restamp(
        self, trained_identifier, identifier_v2, tmp_path
    ):
        conflicting = tmp_path / "conflicting.json"
        save_identifier(conflicting, identifier_v2, epoch=0)
        handle = build_gateway(GatewayConfig(identifier=trained_identifier))
        with pytest.raises(FleetError, match="re-stamp"):
            handle.swap_bundle(conflicting)

    def test_epoch_override_beats_the_bundle_stamp(
        self, trained_identifier, bundle_v1
    ):
        # The rollback path: an old bundle re-issued under a fresh epoch.
        handle = build_gateway(GatewayConfig(identifier=trained_identifier))
        report = handle.swap_bundle(bundle_v1, epoch=7)
        assert report.applied and report.epoch == 7
        assert handle.epoch == 7

    def test_cache_epoch_advance_refuses_backwards(self, trained_identifier):
        handle = build_gateway(GatewayConfig(identifier=trained_identifier))
        handle.adopt_epoch(3)
        assert handle.adopt_epoch(3) == 3  # equal: no-op
        with pytest.raises(LifecycleError, match="backwards"):
            handle.adopt_epoch(2)


# --------------------------------------------------------------------- #
# The distribution channel.
# --------------------------------------------------------------------- #
class TestFleetChannel:
    def test_push_is_idempotent_on_replay(self, bundle_v1):
        fleet = FleetCoordinator()
        first = fleet.push(bundle_v1)
        replay = fleet.push(bundle_v1)
        assert replay is first  # the existing watermark record
        assert fleet.duplicate_pushes == 1
        assert len(fleet.pushes) == 1

    def test_push_refuses_non_advancing_epochs(
        self, trained_identifier, identifier_v2, bundle_v2, tmp_path
    ):
        fleet = FleetCoordinator()
        fleet.push(bundle_v2)
        stale = tmp_path / "stale.json"
        save_identifier(stale, trained_identifier, epoch=1)
        with pytest.raises(FleetError, match="behind the"):
            fleet.push(stale)
        conflicting = tmp_path / "conflicting.json"
        save_identifier(conflicting, trained_identifier, epoch=2)
        with pytest.raises(FleetError, match="re-stamp"):
            fleet.push(conflicting)

    def test_spawn_requires_a_watermark(self):
        fleet = FleetCoordinator()
        with pytest.raises(FleetError, match="push a bundle first"):
            fleet.spawn_gateway("gw-0")

    def test_spawned_member_serves_the_watermark(self, bundle_v1):
        fleet = FleetCoordinator()
        fleet.push(bundle_v1)
        handle = fleet.spawn_gateway("gw-0", GatewayConfig(max_batch=4))
        assert handle.name == "gw-0"
        assert handle.config.max_batch == 4  # template knobs honoured
        assert handle.epoch == 1
        assert fleet.members["gw-0"].pending == 0  # starts caught up

    def test_duplicate_member_name_rejected(self, bundle_v1):
        fleet = FleetCoordinator()
        fleet.push(bundle_v1)
        fleet.spawn_gateway("gw-0")
        with pytest.raises(FleetError, match="gw-0"):
            fleet.spawn_gateway("gw-0")

    def test_rollback_needs_a_previous_push(self, bundle_v1):
        fleet = FleetCoordinator()
        with pytest.raises(FleetError, match="cannot roll back"):
            fleet.rollback()
        fleet.push(bundle_v1)
        with pytest.raises(FleetError, match="cannot roll back"):
            fleet.rollback()

    def test_rollback_reverts_the_model_by_advancing_the_epoch(
        self, trained_identifier, bundle_v1, bundle_v2
    ):
        fleet = FleetCoordinator()
        fleet.push(bundle_v1)
        gateway = fleet.spawn_gateway("gw-0")
        fleet.push(bundle_v2)
        fleet.sync_all()
        record = fleet.rollback()
        assert record.bundle_path == str(bundle_v1)
        assert record.epoch == 3  # forward, never backward
        assert record.revision == trained_identifier.revision
        fleet.sync_all()
        assert gateway.epoch == 3
        assert gateway.revision == trained_identifier.revision

    def test_late_joiner_catches_up_in_order(self, bundle_v1, bundle_v2):
        fleet = FleetCoordinator()
        fleet.push(bundle_v1)
        fleet.push(bundle_v2)
        # A gateway stood up by hand from the OLD bundle, enrolled late.
        handle = build_gateway(GatewayConfig(bundle_path=bundle_v1, name="late"))
        subscriber = fleet.register(handle)
        assert subscriber.lag == 1
        reports = subscriber.poll()
        assert [report.epoch for report in reports] == [2]
        assert subscriber.duplicates == 1  # the v1 record it already served
        assert subscriber.lag == 0

    def test_spawning_after_rollback_adopts_the_channel_epoch(
        self, bundle_v1, bundle_v2
    ):
        fleet = FleetCoordinator()
        fleet.push(bundle_v1)
        fleet.push(bundle_v2)
        fleet.rollback()  # watermark: bundle v1 content @ epoch 3
        handle = fleet.spawn_gateway("gw-new")
        assert handle.epoch == 3  # channel epoch, not the file's stamp


# --------------------------------------------------------------------- #
# End-to-end convergence.
# --------------------------------------------------------------------- #
class TestFleetConvergence:
    FLEET_SIZE = 3

    def test_fleet_converges_and_verdict_streams_are_identical(
        self, bundle_v1, bundle_v2, identifier_v2
    ):
        fleet = FleetCoordinator()
        fleet.push(bundle_v1)
        handles = [
            fleet.spawn_gateway(f"gw-{index}", GatewayConfig(max_batch=4))
            for index in range(self.FLEET_SIZE)
        ]
        probes = probe_fingerprints(6)

        def drive(handle):
            signatures = []
            for mac, fingerprint in probes:
                for identified in handle.identify(mac, fingerprint):
                    signatures.append(verdict_signature(identified))
            return signatures

        view = FleetHealthView(fleet)
        before = [drive(handle) for handle in handles]
        assert all(signatures == before[0] for signatures in before)

        fleet.push(bundle_v2)
        staged = view.collect()
        assert not staged.converged
        assert staged.laggards == tuple(f"gw-{i}" for i in range(self.FLEET_SIZE))
        assert staged.max_lag == 1

        applied = fleet.sync_all()
        assert applied == {f"gw-{i}": 1 for i in range(self.FLEET_SIZE)}

        report = view.collect()
        assert report.converged
        assert report.target_epoch == 2
        assert not report.laggards
        assert {row.epoch for row in report.rows} == {2}
        assert {row.revision for row in report.rows} == {identifier_v2.revision}

        # Identical traffic through every converged member yields
        # bit-identical verdict streams -- the determinism harness's
        # signature (type, matched types, discrimination scores with
        # reference draws) compared across gateways.
        after = [drive(handle) for handle in handles]
        assert all(signatures == after[0] for signatures in after)
        # The new model is actually in service (revision visible above,
        # and the swap changed at least the serving epoch everywhere).
        assert all(handle.epoch == 2 for handle in handles)

    def test_duplicate_push_applies_nowhere(self, bundle_v1, bundle_v2):
        fleet = FleetCoordinator()
        fleet.push(bundle_v1)
        for index in range(2):
            fleet.spawn_gateway(f"gw-{index}")
        fleet.push(bundle_v2)
        assert fleet.sync_all() == {"gw-0": 1, "gw-1": 1}
        fleet.push(bundle_v2)  # replayed
        assert fleet.duplicate_pushes == 1
        assert fleet.sync_all() == {"gw-0": 0, "gw-1": 0}

    def test_channel_ledger_holds_push_and_apply_records(
        self, bundle_v1, bundle_v2, tmp_path
    ):
        from repro.obs import Observability, VerdictLedger

        ledger_path = tmp_path / "fleet-ledger.ndjson"
        fleet = FleetCoordinator(
            observability=Observability(ledger=VerdictLedger(ledger_path))
        )
        fleet.push(bundle_v1)
        fleet.spawn_gateway("gw-0")
        fleet.push(bundle_v2)
        fleet.sync_all()
        fleet.observability.ledger.close()

        records = replay_ledger(ledger_path).records
        pushes = [r for r in records if r.kind == "push"]
        applies = [r for r in records if r.kind == "apply"]
        assert [r.cache_epoch for r in pushes] == [1, 2]
        assert [r.detail["push_id"] for r in pushes] == [1, 2]
        assert len(applies) == 1
        assert applies[0].detail["gateway"] == "gw-0"
        assert applies[0].cache_epoch == 2

    def test_health_view_requires_member_observability(self, bundle_v1):
        fleet = FleetCoordinator()
        fleet.push(bundle_v1)
        fleet.spawn_gateway("gw-0", GatewayConfig(observability=False))
        with pytest.raises(ObservabilityError, match="gw-0"):
            FleetHealthView(fleet).collect()
