"""Tests for flow-key derivation."""

from repro.net.addresses import MACAddress
from repro.net.flow import FlowKey
from repro.net.layers.arp import OP_REQUEST, ARPPacket
from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
from repro.net.layers.ipv4 import IPv4Header, PROTO_ICMP
from repro.net.layers.icmp import ICMPMessage, TYPE_ECHO_REQUEST
from repro.net.packet import Packet

from tests.conftest import make_tcp_packet, make_udp_packet

SRC = MACAddress.from_string("02:00:00:00:00:01")
DST = MACAddress.from_string("02:00:00:00:00:02")


class TestFlowKey:
    def test_tcp_flow(self):
        packet = make_tcp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", dst_port=443, src_port=50001)
        key = FlowKey.from_packet(packet)
        assert key == FlowKey("10.0.0.1", "10.0.0.2", "tcp", 50001, 443)

    def test_udp_flow(self):
        packet = make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", dst_port=53, src_port=40000)
        key = FlowKey.from_packet(packet)
        assert key.protocol == "udp"
        assert key.dst_port == 53

    def test_icmp_flow(self):
        packet = Packet(
            ethernet=EthernetFrame(dst=DST, src=SRC, ethertype=ETHERTYPE.IPV4),
            ipv4=IPv4Header(src="10.0.0.1", dst="10.0.0.2", protocol=PROTO_ICMP),
            icmp=ICMPMessage(icmp_type=TYPE_ECHO_REQUEST),
        )
        key = FlowKey.from_packet(packet)
        assert key.protocol == "icmp"
        assert key.src_port == 0

    def test_non_ip_has_no_flow(self):
        packet = Packet(
            ethernet=EthernetFrame(dst=DST, src=SRC, ethertype=ETHERTYPE.ARP),
            arp=ARPPacket(OP_REQUEST, SRC, "0.0.0.0", MACAddress.zero(), "10.0.0.1"),
        )
        assert FlowKey.from_packet(packet) is None

    def test_reversed_key(self):
        key = FlowKey("10.0.0.1", "10.0.0.2", "tcp", 50001, 443)
        reverse = key.reversed_key
        assert reverse.src_ip == "10.0.0.2"
        assert reverse.dst_port == 50001
        assert reverse.reversed_key == key

    def test_usable_as_dict_key(self):
        key = FlowKey("10.0.0.1", "10.0.0.2", "tcp", 1, 2)
        table = {key: "allow"}
        assert table[FlowKey("10.0.0.1", "10.0.0.2", "tcp", 1, 2)] == "allow"

    def test_str_rendering(self):
        key = FlowKey("10.0.0.1", "10.0.0.2", "udp", 5, 6)
        assert str(key) == "udp:10.0.0.1:5->10.0.0.2:6"
