"""Tests for the two-stage device-type identifier."""

import pytest

from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.exceptions import IdentificationError
from repro.features.fingerprint import Fingerprint
from repro.features.packet_features import FEATURE_COUNT
from repro.identification.identifier import UNKNOWN_DEVICE_TYPE, DeviceTypeIdentifier
from repro.identification.registry import FingerprintRegistry


class TestTrainAndIdentify:
    def test_identifies_training_types(self, small_dataset, trained_identifier):
        correct = 0
        total = 0
        for device_type in small_dataset.device_types[:4]:
            for fingerprint in small_dataset.of_type(device_type)[:4]:
                result = trained_identifier.identify(fingerprint)
                correct += result.device_type == device_type
                total += 1
        assert correct / total >= 0.7

    def test_result_metadata(self, small_dataset, trained_identifier):
        fingerprint = small_dataset.fingerprints[0]
        result = trained_identifier.identify(fingerprint)
        assert result.classification_seconds > 0
        assert result.total_seconds >= result.classification_seconds
        if result.needed_discrimination:
            assert len(result.discrimination_scores) == len(result.matched_types)
        assert isinstance(result.matched_types, tuple)

    def test_unknown_device_detected(self, trained_identifier):
        # A fingerprint radically unlike anything in the training data:
        # a single LLC frame repeated.
        rows = []
        for index in range(6):
            row = [0] * FEATURE_COUNT
            row[1] = 1  # llc
            row[18] = 2000 + index * 17
            rows.append(row)
        foreign = Fingerprint.from_feature_rows(rows)
        result = trained_identifier.identify(foreign)
        assert result.device_type == UNKNOWN_DEVICE_TYPE
        assert result.is_new_device_type

    def test_disable_discrimination(self, small_dataset, trained_identifier):
        fingerprint = small_dataset.of_type("TP-LinkPlugHS110")[0]
        result = trained_identifier.identify(fingerprint, use_discrimination=False)
        assert result.discrimination_scores == ()
        assert result.device_type in trained_identifier.known_device_types + [UNKNOWN_DEVICE_TYPE]

    def test_identify_many(self, small_dataset, trained_identifier):
        fingerprints = small_dataset.fingerprints[:5]
        results = trained_identifier.identify_many(fingerprints)
        assert len(results) == 5

    def test_confusable_family_matches_stay_in_family(self, small_dataset, trained_identifier):
        """Smarter appliances may be confused with each other but rarely
        with unrelated device-types (the Table III structure)."""
        family = {"SmarterCoffee", "iKettle2"}
        in_family = 0
        total = 0
        for device_type in family:
            for fingerprint in small_dataset.of_type(device_type):
                predicted = trained_identifier.identify(fingerprint).device_type
                total += 1
                in_family += predicted in family
        assert in_family / total >= 0.8


class TestIncrementalLearning:
    def test_add_device_type(self, small_dataset):
        registry = small_dataset.to_registry()
        identifier = DeviceTypeIdentifier.train(registry, n_estimators=5, random_state=0)
        known_before = set(identifier.known_device_types)

        simulator = SetupTrafficSimulator(seed=77)
        traces = simulator.simulate_many(DEVICE_CATALOG["Withings"], 6)
        fingerprints = [
            Fingerprint.from_packets(trace.packets, device_type="Withings") for trace in traces
        ]
        identifier.add_device_type("Withings", fingerprints)

        assert set(identifier.known_device_types) == known_before | {"Withings"}
        probe = Fingerprint.from_packets(
            simulator.simulate(DEVICE_CATALOG["Withings"]).packets, device_type="Withings"
        )
        assert identifier.identify(probe).device_type == "Withings"

    def test_add_device_type_requires_fingerprints(self, small_dataset):
        identifier = DeviceTypeIdentifier.train(
            small_dataset.to_registry(), n_estimators=3, random_state=0
        )
        with pytest.raises(IdentificationError):
            identifier.add_device_type("Empty", [])

    def test_training_empty_registry_rejected(self):
        with pytest.raises(IdentificationError):
            DeviceTypeIdentifier.train(FingerprintRegistry())
