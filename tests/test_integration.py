"""End-to-end integration tests: capture -> fingerprint -> identify -> enforce."""

import numpy as np

from repro.datasets.builder import DatasetBuilder
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.features.fingerprint import Fingerprint
from repro.features.session import SetupPhaseDetector, split_by_source
from repro.gateway.security_gateway import SecurityGateway
from repro.identification.identifier import DeviceTypeIdentifier
from repro.net.pcap import read_pcap, write_pcap
from repro.security_service.isolation import IsolationLevel
from repro.security_service.service import IoTSecurityService


class TestPcapToIdentificationPipeline:
    def test_full_pipeline_from_capture_file(self, tmp_path, trained_identifier):
        """Simulate a capture, write it to pcap, re-read it, and identify."""
        simulator = SetupTrafficSimulator(seed=2024)
        trace = simulator.simulate(DEVICE_CATALOG["EdnetCam"])
        capture_path = tmp_path / "new_device.pcap"
        write_pcap(capture_path, trace.packets)

        packets = read_pcap(capture_path)
        by_source = split_by_source(packets)
        device_packets = by_source[trace.device_mac]
        setup_packets = SetupPhaseDetector().setup_slice(device_packets)
        fingerprint = Fingerprint.from_packets(setup_packets)

        result = trained_identifier.identify(fingerprint)
        assert result.device_type == "EdnetCam"

    def test_mixed_capture_multiple_devices(self, tmp_path, trained_identifier):
        simulator = SetupTrafficSimulator(seed=2025)
        traces = [
            simulator.simulate(DEVICE_CATALOG["Aria"]),
            simulator.simulate(DEVICE_CATALOG["HueBridge"]),
        ]
        mixed = sorted(
            (packet for trace in traces for packet in trace.packets),
            key=lambda packet: packet.timestamp,
        )
        segments = SetupPhaseDetector().segment_capture(mixed)
        assert len(segments) == 2
        predictions = {}
        for trace in traces:
            fingerprint = Fingerprint.from_packets(segments[trace.device_mac])
            predictions[trace.device_type] = trained_identifier.identify(fingerprint).device_type
        assert predictions["Aria"] == "Aria"
        assert predictions["HueBridge"] == "HueBridge"


class TestGatewayEndToEnd:
    def test_household_onboarding_scenario(self, trained_identifier):
        """Onboard several devices and verify the resulting network policy."""
        service = IoTSecurityService(identifier=trained_identifier)
        gateway = SecurityGateway(security_service=service)
        simulator = SetupTrafficSimulator(environment=service.environment, seed=4242)

        records = {}
        for name in ("Aria", "EdnetCam", "HueBridge"):
            trace = simulator.simulate(DEVICE_CATALOG[name])
            records[name] = gateway.onboard_device(trace.packets)

        assert records["Aria"].isolation_level is IsolationLevel.TRUSTED
        assert records["EdnetCam"].isolation_level is IsolationLevel.RESTRICTED
        assert gateway.connected_device_count == 3
        assert len(gateway.rule_cache) == 3
        # Every identified device has at least one switch rule when filtering.
        assert gateway.switch.rule_count >= 3

    def test_incremental_device_type_rollout(self, small_dataset):
        """A brand-new device-type can be added without retraining the rest."""
        registry = small_dataset.to_registry()
        identifier = DeviceTypeIdentifier.train(registry, n_estimators=6, random_state=3)
        service = IoTSecurityService(identifier=identifier)
        gateway = SecurityGateway(security_service=service)

        simulator = SetupTrafficSimulator(seed=777)
        # Before: the Lightify gateway cannot be recognised as its real type
        # (it is not part of the training registry yet).
        unknown_trace = simulator.simulate(DEVICE_CATALOG["Lightify"])
        record = gateway.onboard_device(unknown_trace.packets)
        assert record.device_type != "Lightify"

        # The IoTSSP learns the new type from lab fingerprints.
        training = [
            Fingerprint.from_packets(trace.packets, device_type="Lightify")
            for trace in simulator.simulate_many(DEVICE_CATALOG["Lightify"], 8)
        ]
        identifier.add_device_type("Lightify", training)

        # After: a freshly connected Lightify is identified and trusted
        # (no seeded vulnerabilities for it).
        second_trace = simulator.simulate(DEVICE_CATALOG["Lightify"])
        second_record = gateway.onboard_device(second_trace.packets)
        assert second_record.device_type == "Lightify"
        assert second_record.isolation_level is IsolationLevel.TRUSTED


class TestDatasetReproducibility:
    def test_same_seed_same_dataset_same_accuracy_inputs(self):
        names = ("Aria", "WeMoSwitch", "TP-LinkPlugHS110")
        first = DatasetBuilder(runs_per_type=4, seed=9).build_synthetic(names)
        second = DatasetBuilder(runs_per_type=4, seed=9).build_synthetic(names)
        assert len(first) == len(second) == 12
        for a, b in zip(first.fingerprints, second.fingerprints):
            assert a.device_type == b.device_type
            assert np.array_equal(a.vectors, b.vectors)
