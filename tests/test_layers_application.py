"""Tests for the application-layer dissectors (DHCP, DNS, HTTP, SSDP, NTP, TLS)."""

import pytest

from repro.exceptions import PacketDecodeError
from repro.net.addresses import MACAddress
from repro.net.layers import dhcp, dns, http, ntp, ssdp, tls

MAC = MACAddress.from_string("02:00:00:00:00:11")


class TestDHCP:
    def test_discover_roundtrip(self):
        message = dhcp.discover(MAC, transaction_id=0xDEADBEEF, hostname="my-device")
        parsed, _ = dhcp.DHCPMessage.from_bytes(message.to_bytes())
        assert parsed.client_mac == MAC
        assert parsed.transaction_id == 0xDEADBEEF
        assert parsed.hostname == "my-device"
        assert parsed.message_type == dhcp.MSG_DISCOVER
        assert parsed.is_dhcp

    def test_request_roundtrip(self):
        message = dhcp.request(MAC, requested_ip="192.168.0.55", hostname="cam")
        parsed, _ = dhcp.DHCPMessage.from_bytes(message.to_bytes())
        assert parsed.message_type == dhcp.MSG_REQUEST
        assert any(option.code == dhcp.OPTION_REQUESTED_IP for option in parsed.options)

    def test_plain_bootp(self):
        message = dhcp.DHCPMessage(op=dhcp.OP_REQUEST, client_mac=MAC, is_dhcp=False)
        parsed, _ = dhcp.DHCPMessage.from_bytes(message.to_bytes())
        assert not parsed.is_dhcp
        assert parsed.message_type is None
        assert parsed.hostname is None

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            dhcp.DHCPMessage.from_bytes(b"\x01" * 50)

    def test_option_serialisation(self):
        option = dhcp.DHCPOption(code=12, data=b"host")
        assert option.to_bytes() == b"\x0c\x04host"


class TestDNS:
    def test_query_roundtrip(self):
        message = dns.query("cloud.vendor.example", transaction_id=77)
        parsed, rest = dns.DNSMessage.from_bytes(message.to_bytes())
        assert rest == b""
        assert parsed.transaction_id == 77
        assert not parsed.is_response
        assert parsed.question_names == ["cloud.vendor.example"]

    def test_mdns_announcement_roundtrip(self):
        message = dns.mdns_announcement("_hue._tcp.local", "bridge01")
        parsed, _ = dns.DNSMessage.from_bytes(message.to_bytes())
        assert parsed.is_response
        assert parsed.answers[0].name == "_hue._tcp.local"
        assert parsed.answers[0].rtype == dns.TYPE_PTR

    def test_multiple_questions(self):
        message = dns.DNSMessage(
            questions=[dns.DNSQuestion("a.example"), dns.DNSQuestion("b.example", qtype=dns.TYPE_AAAA)]
        )
        parsed, _ = dns.DNSMessage.from_bytes(message.to_bytes())
        assert parsed.question_names == ["a.example", "b.example"]
        assert parsed.questions[1].qtype == dns.TYPE_AAAA

    def test_compression_pointer_loop_rejected(self):
        # Header with one question whose name is a pointer to itself.
        raw = (
            (1).to_bytes(2, "big")
            + (0x0100).to_bytes(2, "big")
            + (1).to_bytes(2, "big")
            + b"\x00" * 6
            + b"\xc0\x0c"
            + b"\x00\x01\x00\x01"
        )
        with pytest.raises(PacketDecodeError):
            dns.DNSMessage.from_bytes(raw)

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            dns.DNSMessage.from_bytes(b"\x00\x01")

    def test_label_too_long(self):
        with pytest.raises(Exception):
            dns.query("x" * 80 + ".example").to_bytes()


class TestHTTP:
    def test_get_roundtrip(self):
        request = http.get("/setup", "api.vendor.example")
        parsed, _ = http.HTTPMessage.from_bytes(request.to_bytes())
        assert parsed.is_request
        assert parsed.method == "GET"
        assert parsed.path == "/setup"
        assert parsed.host == "api.vendor.example"

    def test_post_carries_body(self):
        request = http.post("/register", "api.vendor.example", b'{"id": 1}')
        parsed, _ = http.HTTPMessage.from_bytes(request.to_bytes())
        assert parsed.method == "POST"
        assert parsed.body == b'{"id": 1}'
        assert parsed.headers["Content-Length"] == "9"

    def test_response_detection(self):
        raw = b"HTTP/1.1 200 OK\r\nServer: test\r\n\r\nbody"
        parsed, _ = http.HTTPMessage.from_bytes(raw)
        assert parsed.is_response
        assert not parsed.is_request
        assert parsed.method is None

    def test_not_http(self):
        with pytest.raises(PacketDecodeError):
            http.HTTPMessage.from_bytes(b"\x16\x03\x01\x00\x05hello")

    def test_binary_garbage(self):
        with pytest.raises(PacketDecodeError):
            http.HTTPMessage.from_bytes(bytes(range(256)))


class TestSSDP:
    def test_msearch_roundtrip(self):
        message = ssdp.msearch("urn:dial-multiscreen-org:service:dial:1")
        parsed, _ = ssdp.SSDPMessage.from_bytes(message.to_bytes())
        assert parsed.is_msearch
        assert parsed.search_target == "urn:dial-multiscreen-org:service:dial:1"

    def test_notify_roundtrip(self):
        message = ssdp.notify("upnp:rootdevice", "uuid:abc", "http://192.168.0.5:8080/desc.xml")
        parsed, _ = ssdp.SSDPMessage.from_bytes(message.to_bytes())
        assert parsed.is_notify
        assert parsed.headers["NTS"] == "ssdp:alive"
        assert parsed.search_target == "upnp:rootdevice"

    def test_plain_http_get_is_not_ssdp(self):
        raw = http.get("/", "example.com").to_bytes()
        with pytest.raises(PacketDecodeError):
            ssdp.SSDPMessage.from_bytes(raw)


class TestNTP:
    def test_roundtrip(self):
        message = ntp.NTPMessage(transmit_timestamp=123456789)
        parsed, rest = ntp.NTPMessage.from_bytes(message.to_bytes())
        assert rest == b""
        assert parsed.mode == ntp.MODE_CLIENT
        assert parsed.version == 4
        assert parsed.transmit_timestamp == 123456789
        assert parsed.is_client_request

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            ntp.NTPMessage.from_bytes(b"\x23" * 20)


class TestTLS:
    def test_client_hello_roundtrip(self):
        record = tls.client_hello("cloud.vendor.example", payload_size=200)
        parsed, rest = tls.TLSRecord.from_bytes(record.to_bytes())
        assert rest == b""
        assert parsed.is_handshake
        assert parsed.is_client_hello
        assert len(parsed.payload) == 200

    def test_application_data_is_not_client_hello(self):
        record = tls.TLSRecord(content_type=tls.CONTENT_TYPE_APPLICATION_DATA, payload=b"\x00" * 32)
        parsed, _ = tls.TLSRecord.from_bytes(record.to_bytes())
        assert not parsed.is_handshake
        assert not parsed.is_client_hello

    def test_unknown_content_type_rejected(self):
        with pytest.raises(PacketDecodeError):
            tls.TLSRecord.from_bytes(b"\x99\x03\x03\x00\x01\x00")

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            tls.TLSRecord.from_bytes(b"\x16\x03")
