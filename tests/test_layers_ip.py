"""Tests for IPv4/IPv6/ICMP/ICMPv6 dissectors."""

import pytest

from repro.exceptions import PacketDecodeError
from repro.net.layers.icmp import ICMPMessage, TYPE_ECHO_REPLY, TYPE_ECHO_REQUEST
from repro.net.layers.icmpv6 import (
    ICMPv6Message,
    TYPE_MLDV2_REPORT,
    TYPE_NEIGHBOR_SOLICITATION,
    TYPE_ROUTER_SOLICITATION,
)
from repro.net.layers.ipv4 import (
    IPOption,
    IPv4Header,
    OPTION_NOP,
    OPTION_ROUTER_ALERT,
    PROTO_TCP,
    PROTO_UDP,
    checksum,
)
from repro.net.layers.ipv6 import HBH_OPTION_ROUTER_ALERT, IPv6Header, NEXT_HEADER_UDP


class TestIPv4Header:
    def test_roundtrip_without_options(self):
        header = IPv4Header(src="192.168.0.10", dst="8.8.8.8", protocol=PROTO_TCP, ttl=63)
        parsed, payload = IPv4Header.from_bytes(header.to_bytes(b"hello"))
        assert parsed.src == "192.168.0.10"
        assert parsed.dst == "8.8.8.8"
        assert parsed.protocol == PROTO_TCP
        assert parsed.ttl == 63
        assert payload == b"hello"

    def test_roundtrip_with_options(self):
        header = IPv4Header(
            src="10.0.0.1",
            dst="224.0.0.22",
            protocol=2,
            options=[IPOption(kind=OPTION_ROUTER_ALERT, data=b"\x00\x00"), IPOption(kind=OPTION_NOP)],
        )
        parsed, _ = IPv4Header.from_bytes(header.to_bytes(b""))
        assert parsed.has_router_alert_option
        assert parsed.has_padding_option

    def test_no_options_flags_false(self):
        header = IPv4Header(src="10.0.0.1", dst="10.0.0.2", protocol=PROTO_UDP)
        assert not header.has_router_alert_option
        assert not header.has_padding_option

    def test_checksum_is_valid(self):
        header = IPv4Header(src="1.2.3.4", dst="5.6.7.8", protocol=PROTO_UDP)
        raw = header.to_bytes()[:20]
        assert checksum(raw) == 0

    def test_rejects_ipv6_payload(self):
        ipv6_raw = IPv6Header(src="::1", dst="::2", next_header=NEXT_HEADER_UDP).to_bytes()
        with pytest.raises(PacketDecodeError):
            IPv4Header.from_bytes(ipv6_raw)

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            IPv4Header.from_bytes(b"\x45\x00")

    def test_total_length_bounds_payload(self):
        header = IPv4Header(src="1.1.1.1", dst="2.2.2.2", protocol=PROTO_UDP, total_length=20 + 4)
        raw = header.to_bytes(b"abcdXXXX")  # trailing Ethernet padding
        parsed, payload = IPv4Header.from_bytes(raw)
        assert payload == b"abcd"


class TestIPv6Header:
    def test_roundtrip_basic(self):
        header = IPv6Header(src="fe80::1", dst="ff02::fb", next_header=NEXT_HEADER_UDP, hop_limit=1)
        parsed, payload = IPv6Header.from_bytes(header.to_bytes(b"data"))
        assert parsed.src == "fe80::1"
        assert parsed.dst == "ff02::fb"
        assert parsed.next_header == NEXT_HEADER_UDP
        assert payload == b"data"

    def test_hop_by_hop_router_alert_roundtrip(self):
        header = IPv6Header(
            src="fe80::1",
            dst="ff02::16",
            next_header=58,
            hop_by_hop_options=[HBH_OPTION_ROUTER_ALERT],
        )
        parsed, payload = IPv6Header.from_bytes(header.to_bytes(b"mld"))
        assert parsed.has_router_alert_option
        assert parsed.next_header == 58
        assert payload == b"mld"

    def test_rejects_ipv4(self):
        ipv4_raw = IPv4Header(src="1.1.1.1", dst="2.2.2.2", protocol=PROTO_UDP).to_bytes(b"x" * 30)
        with pytest.raises(PacketDecodeError):
            IPv6Header.from_bytes(ipv4_raw)

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            IPv6Header.from_bytes(b"\x60" + b"\x00" * 10)


class TestICMP:
    def test_roundtrip(self):
        message = ICMPMessage(icmp_type=TYPE_ECHO_REQUEST, identifier=7, sequence=3, payload=b"ping")
        parsed, _ = ICMPMessage.from_bytes(message.to_bytes())
        assert parsed.icmp_type == TYPE_ECHO_REQUEST
        assert parsed.identifier == 7
        assert parsed.sequence == 3
        assert parsed.payload == b"ping"

    def test_flags(self):
        assert ICMPMessage(icmp_type=TYPE_ECHO_REQUEST).is_echo_request
        assert ICMPMessage(icmp_type=TYPE_ECHO_REPLY).is_echo_reply

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            ICMPMessage.from_bytes(b"\x08\x00")


class TestICMPv6:
    def test_roundtrip(self):
        message = ICMPv6Message(icmp_type=TYPE_NEIGHBOR_SOLICITATION, body=b"\x00" * 20)
        parsed, _ = ICMPv6Message.from_bytes(message.to_bytes())
        assert parsed.icmp_type == TYPE_NEIGHBOR_SOLICITATION
        assert parsed.body == b"\x00" * 20

    def test_classification_helpers(self):
        assert ICMPv6Message(icmp_type=TYPE_ROUTER_SOLICITATION).is_neighbor_discovery
        assert ICMPv6Message(icmp_type=TYPE_MLDV2_REPORT).is_mld
        assert not ICMPv6Message(icmp_type=TYPE_MLDV2_REPORT).is_neighbor_discovery

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            ICMPv6Message.from_bytes(b"\x87")
