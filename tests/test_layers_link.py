"""Tests for link-layer and EAPoL/ARP dissectors."""

import pytest

from repro.exceptions import PacketDecodeError
from repro.net.addresses import MACAddress
from repro.net.layers.arp import ARPPacket, OP_REPLY, OP_REQUEST
from repro.net.layers.eapol import EAPOLFrame, TYPE_KEY, TYPE_START
from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
from repro.net.layers.llc import LLCHeader, SAP_SPANNING_TREE

MAC_A = MACAddress.from_string("02:00:00:00:00:01")
MAC_B = MACAddress.from_string("02:00:00:00:00:02")


class TestEthernetFrame:
    def test_roundtrip(self):
        frame = EthernetFrame(dst=MAC_B, src=MAC_A, ethertype=ETHERTYPE.IPV4)
        parsed, rest = EthernetFrame.from_bytes(frame.to_bytes() + b"payload")
        assert parsed == frame
        assert rest == b"payload"

    def test_too_short(self):
        with pytest.raises(PacketDecodeError):
            EthernetFrame.from_bytes(b"\x00" * 10)

    def test_llc_detection(self):
        llc_frame = EthernetFrame(dst=MAC_B, src=MAC_A, ethertype=0x0040)
        assert llc_frame.is_llc
        ip_frame = EthernetFrame(dst=MAC_B, src=MAC_A, ethertype=ETHERTYPE.IPV4)
        assert not ip_frame.is_llc


class TestLLCHeader:
    def test_roundtrip(self):
        header = LLCHeader(dsap=SAP_SPANNING_TREE, ssap=SAP_SPANNING_TREE, control=0x03)
        parsed, rest = LLCHeader.from_bytes(header.to_bytes() + b"bpdu")
        assert parsed == header
        assert rest == b"bpdu"

    def test_too_short(self):
        with pytest.raises(PacketDecodeError):
            LLCHeader.from_bytes(b"\x42")


class TestARPPacket:
    def _packet(self, operation=OP_REQUEST, sender_ip="192.168.0.5", target_ip="192.168.0.1"):
        return ARPPacket(
            operation=operation,
            sender_mac=MAC_A,
            sender_ip=sender_ip,
            target_mac=MACAddress.zero(),
            target_ip=target_ip,
        )

    def test_roundtrip(self):
        packet = self._packet()
        parsed, rest = ARPPacket.from_bytes(packet.to_bytes())
        assert parsed == packet
        assert rest == b""

    def test_request_reply_flags(self):
        assert self._packet(OP_REQUEST).is_request
        assert self._packet(OP_REPLY).is_reply
        assert not self._packet(OP_REPLY).is_request

    def test_gratuitous(self):
        announce = self._packet(sender_ip="192.168.0.5", target_ip="192.168.0.5")
        assert announce.is_gratuitous
        assert not self._packet().is_gratuitous

    def test_trailing_padding_preserved(self):
        packet = self._packet()
        parsed, rest = ARPPacket.from_bytes(packet.to_bytes() + b"\x00" * 18)
        assert parsed == packet
        assert rest == b"\x00" * 18

    def test_too_short(self):
        with pytest.raises(PacketDecodeError):
            ARPPacket.from_bytes(b"\x00" * 10)

    def test_unsupported_address_lengths(self):
        raw = bytearray(self._packet().to_bytes())
        raw[4] = 8  # hardware address length
        with pytest.raises(PacketDecodeError):
            ARPPacket.from_bytes(bytes(raw))


class TestEAPOLFrame:
    def test_roundtrip(self):
        frame = EAPOLFrame(packet_type=TYPE_KEY, body=b"\x01" * 95)
        parsed, rest = EAPOLFrame.from_bytes(frame.to_bytes())
        assert parsed == frame
        assert rest == b""

    def test_flags(self):
        assert EAPOLFrame(packet_type=TYPE_KEY).is_key
        assert EAPOLFrame(packet_type=TYPE_START).is_start
        assert not EAPOLFrame(packet_type=TYPE_START).is_key

    def test_too_short(self):
        with pytest.raises(PacketDecodeError):
            EAPOLFrame.from_bytes(b"\x02")
