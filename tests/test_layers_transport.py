"""Tests for TCP and UDP dissectors."""

import pytest

from repro.exceptions import PacketDecodeError
from repro.net.layers.tcp import FLAG_ACK, FLAG_SYN, TCPSegment
from repro.net.layers.udp import UDPDatagram


class TestTCPSegment:
    def test_roundtrip(self):
        segment = TCPSegment(src_port=51000, dst_port=443, seq=123, ack=0, flags=FLAG_SYN, payload=b"")
        parsed, payload = TCPSegment.from_bytes(segment.to_bytes())
        assert parsed.src_port == 51000
        assert parsed.dst_port == 443
        assert parsed.seq == 123
        assert parsed.is_syn
        assert payload == b""

    def test_payload_roundtrip(self):
        segment = TCPSegment(src_port=1, dst_port=2, flags=FLAG_ACK, payload=b"GET / HTTP/1.1")
        parsed, payload = TCPSegment.from_bytes(segment.to_bytes())
        assert payload == b"GET / HTTP/1.1"
        assert parsed.has_payload

    def test_syn_ack_flags(self):
        assert TCPSegment(src_port=1, dst_port=2, flags=FLAG_SYN | FLAG_ACK).is_syn_ack
        assert not TCPSegment(src_port=1, dst_port=2, flags=FLAG_SYN | FLAG_ACK).is_syn

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            TCPSegment.from_bytes(b"\x00" * 10)

    def test_bad_data_offset(self):
        raw = bytearray(TCPSegment(src_port=1, dst_port=2).to_bytes())
        raw[12] = 0x10  # data offset of 4 words < minimum of 5
        with pytest.raises(PacketDecodeError):
            TCPSegment.from_bytes(bytes(raw))


class TestUDPDatagram:
    def test_roundtrip(self):
        datagram = UDPDatagram(src_port=68, dst_port=67, payload=b"dhcp")
        parsed, payload = UDPDatagram.from_bytes(datagram.to_bytes())
        assert parsed.src_port == 68
        assert parsed.dst_port == 67
        assert payload == b"dhcp"
        assert parsed.has_payload

    def test_empty_payload(self):
        datagram = UDPDatagram(src_port=123, dst_port=123)
        parsed, payload = UDPDatagram.from_bytes(datagram.to_bytes())
        assert payload == b""
        assert not parsed.has_payload

    def test_length_field_bounds_payload(self):
        raw = UDPDatagram(src_port=1, dst_port=2, payload=b"abcd").to_bytes() + b"\x00" * 6
        _, payload = UDPDatagram.from_bytes(raw)
        assert payload == b"abcd"

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            UDPDatagram.from_bytes(b"\x00\x01\x02")

    def test_invalid_length_field(self):
        raw = bytearray(UDPDatagram(src_port=1, dst_port=2, payload=b"xy").to_bytes())
        raw[4:6] = (0).to_bytes(2, "big")
        with pytest.raises(PacketDecodeError):
            UDPDatagram.from_bytes(bytes(raw))
