"""Tests for the online-learning lifecycle (quarantine -> learn -> enforce)."""

from __future__ import annotations

import pytest

from repro.datasets.builder import DatasetBuilder
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.exceptions import LifecycleError, ModelStoreError
from repro.features.fingerprint import Fingerprint
from repro.gateway.security_gateway import SecurityGateway
from repro.identification.identifier import (
    DeviceTypeIdentifier,
    IdentificationResult,
    UNKNOWN_DEVICE_TYPE,
)
from repro.identification.lifecycle import (
    CacheEpoch,
    LifecycleCoordinator,
    QuarantineLog,
    RELEARN_REASON,
)
from repro.identification.model_store import bundle_epoch
from repro.security_service.isolation import IsolationLevel
from repro.security_service.service import IoTSecurityService
from repro.streaming import (
    BatchDispatcher,
    GatewayEnforcementSink,
    IdentificationCache,
    IdentifiedDevice,
    ReadyFingerprint,
    SimulatedSource,
    StreamingPipeline,
)
from tests.conftest import make_device_mac

#: Training set deliberately missing "Aria": Aria devices identify as
#: unknown until the type is learned at runtime, and Aria assesses clean
#: (trusted), so the upgrade exercises the WPS re-keying path too.
PARTIAL_TYPES = ("HueBridge", "EdnetCam", "WeMoSwitch", "D-LinkCam", "TP-LinkPlugHS110")


@pytest.fixture(scope="module")
def partial_dataset():
    return DatasetBuilder(runs_per_type=8, seed=1234).build_synthetic(PARTIAL_TYPES)


@pytest.fixture()
def partial_identifier(partial_dataset):
    """A fresh identifier per test: learning mutates the bank."""
    return DeviceTypeIdentifier.train(partial_dataset.to_registry(), random_state=7)


@pytest.fixture(scope="module")
def aria_training():
    simulator = SetupTrafficSimulator(seed=555)
    return [
        Fingerprint.from_packets(trace.packets, device_type="Aria")
        for trace in simulator.simulate_many(DEVICE_CATALOG["Aria"], 8)
    ]


def aria_ready(seed=777, mac=None) -> ReadyFingerprint:
    trace = SetupTrafficSimulator(seed=seed).simulate(DEVICE_CATALOG["Aria"])
    fingerprint = Fingerprint.from_packets(trace.packets)
    return ReadyFingerprint(
        mac=mac or trace.device_mac, fingerprint=fingerprint, reason="budget"
    )


def known_result(device_type="HueBridge") -> IdentificationResult:
    return IdentificationResult(device_type=device_type, matched_types=(device_type,))


def unknown_result() -> IdentificationResult:
    return IdentificationResult(device_type=UNKNOWN_DEVICE_TYPE, matched_types=())


# --------------------------------------------------------------------- #
# The cache epoch: generation-stamped entries.
# --------------------------------------------------------------------- #
class TestCacheEpoch:
    def test_bump_makes_existing_entries_unreachable(self):
        epoch = CacheEpoch()
        cache = IdentificationCache(capacity=4, epoch=epoch)
        cache.put(b"key", known_result())
        assert cache.get(b"key") is not None

        epoch.bump()
        assert cache.get(b"key") is None  # stale even though never cleared
        assert cache.stale_rejections == 1
        assert len(cache) == 0  # the stale entry was evicted on lookup

    def test_peek_also_rejects_stale_entries(self):
        epoch = CacheEpoch()
        cache = IdentificationCache(capacity=4, epoch=epoch)
        cache.put(b"key", known_result())
        epoch.bump()
        assert cache.peek(b"key") is None
        assert cache.stale_rejections == 1

    def test_one_bump_invalidates_every_sharing_cache(self):
        epoch = CacheEpoch()
        caches = [IdentificationCache(capacity=4, epoch=epoch) for _ in range(3)]
        for cache in caches:
            cache.put(b"key", known_result())
        epoch.bump()
        assert all(cache.get(b"key") is None for cache in caches)

    def test_entries_written_after_bump_are_served(self):
        epoch = CacheEpoch()
        cache = IdentificationCache(capacity=4, epoch=epoch)
        epoch.bump()
        cache.put(b"key", known_result())
        assert cache.get(b"key") is not None
        assert cache.stale_rejections == 0

    def test_private_epoch_preserves_plain_lru_semantics(self):
        cache = IdentificationCache(capacity=4)
        cache.put(b"key", known_result())
        assert cache.get(b"key") is not None
        assert cache.stale_rejections == 0

    def test_negative_generation_rejected(self):
        with pytest.raises(LifecycleError):
            CacheEpoch(generation=-1)


# --------------------------------------------------------------------- #
# The quarantine log.
# --------------------------------------------------------------------- #
class TestQuarantineLog:
    def test_record_discard_roundtrip(self):
        log = QuarantineLog(capacity=8)
        ready = aria_ready()
        log.record(ready.mac, ready.fingerprint, now=3.0, completion_reason="idle")
        assert ready.mac in log
        assert len(log) == 1
        entry = log.devices()[0]
        assert entry.quarantined_at == 3.0
        assert entry.completion_reason == "idle"

        assert log.discard(ready.mac)
        assert ready.mac not in log
        assert log.released == 1
        assert not log.discard(ready.mac)  # idempotent

    def test_repeat_sighting_replaces_instead_of_growing(self):
        log = QuarantineLog(capacity=8)
        ready = aria_ready()
        newer = aria_ready(seed=778, mac=ready.mac)
        log.record(ready.mac, ready.fingerprint, now=1.0)
        log.record(newer.mac, newer.fingerprint, now=2.0)
        assert len(log) == 1
        assert log.devices()[0].quarantined_at == 2.0
        assert log.recorded == 2

    def test_capacity_bound_evicts_oldest(self):
        log = QuarantineLog(capacity=2)
        fingerprint = aria_ready().fingerprint
        macs = [make_device_mac(index + 1) for index in range(3)]
        for mac in macs:
            log.record(mac, fingerprint)
        assert len(log) == 2
        assert macs[0] not in log  # the oldest was evicted
        assert macs[1] in log and macs[2] in log
        assert log.evicted == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(LifecycleError):
            QuarantineLog(capacity=0)


# --------------------------------------------------------------------- #
# Coordinator units.
# --------------------------------------------------------------------- #
class TestCoordinator:
    def test_note_identified_quarantines_unknown_and_releases_known(
        self, partial_identifier
    ):
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        ready = aria_ready()
        unknown = IdentifiedDevice(
            mac=ready.mac, fingerprint=ready.fingerprint, result=unknown_result()
        )
        assert coordinator.note_identified(unknown, now=5.0)
        assert ready.mac in coordinator.quarantine

        identified = IdentifiedDevice(
            mac=ready.mac, fingerprint=ready.fingerprint, result=known_result()
        )
        assert not coordinator.note_identified(identified)
        assert ready.mac not in coordinator.quarantine

    def test_register_cache_requires_clear(self, partial_identifier):
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        with pytest.raises(LifecycleError):
            coordinator.register_cache(object())

    def test_register_cache_dedups_by_identity_not_equality(self, partial_identifier):
        # Two distinct caches may compare equal by value (e.g. two empty
        # dicts); both must be registered, or the second is never cleared.
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        first: dict = {}
        second: dict = {}
        coordinator.register_cache(first)
        coordinator.register_cache(second)
        coordinator.register_cache(first)  # the same object, once only
        assert len(coordinator.registered_caches) == 2

    def test_sink_failure_keeps_the_device_quarantined(
        self, partial_identifier, aria_training
    ):
        # Enforcement failing for a re-identified device must not strand
        # it: the quarantine entry survives for the next attempt.
        def failing_sink(identified):
            raise RuntimeError("switch unreachable")

        coordinator = LifecycleCoordinator(
            identifier=partial_identifier, sink=failing_sink
        )
        ready = aria_ready()
        coordinator.quarantine.record(ready.mac, ready.fingerprint)
        with pytest.raises(RuntimeError):
            coordinator.learn_device_type("Aria", aria_training)
        assert ready.mac in coordinator.quarantine

    def test_make_cache_is_registered_and_epoch_bound(self, partial_identifier):
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        cache = coordinator.make_cache(capacity=8)
        assert cache in coordinator.registered_caches
        assert cache.epoch is coordinator.epoch

    def test_learn_clears_registered_caches_and_bumps_epoch(
        self, partial_identifier, aria_training
    ):
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        cache = coordinator.make_cache(capacity=8)
        cache.put(b"key", known_result())
        report = coordinator.learn_device_type("Aria", aria_training)
        assert report.generation == 1
        assert coordinator.epoch.generation == 1
        assert len(cache) == 0
        assert report.quarantined == 0
        assert coordinator.relearns == 1
        assert "Aria" in partial_identifier.known_device_types
        assert partial_identifier.revision == 1

    def test_snapshot_paths_required(self, partial_identifier):
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        with pytest.raises(LifecycleError):
            coordinator.save_snapshot()
        with pytest.raises(LifecycleError):
            coordinator.load_snapshot()

    def test_unmatched_fleet_stays_quarantined(self, partial_identifier):
        # Learning some *other* type must not release devices it cannot
        # identify: they wait for the next registration.
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        ready = aria_ready()
        coordinator.quarantine.record(ready.mac, ready.fingerprint)
        simulator = SetupTrafficSimulator(seed=321)
        training = [
            Fingerprint.from_packets(trace.packets, device_type="SmarterCoffee")
            for trace in simulator.simulate_many(DEVICE_CATALOG["SmarterCoffee"], 8)
        ]
        report = coordinator.learn_device_type("SmarterCoffee", training)
        assert report.still_unknown == (ready.mac,)
        assert report.upgraded == ()
        assert ready.mac in coordinator.quarantine


# --------------------------------------------------------------------- #
# The end-to-end acceptance scenario.
# --------------------------------------------------------------------- #
class TestEndToEnd:
    def build_stack(self, identifier, tmp_path=None):
        service = IoTSecurityService(identifier=identifier)
        gateway = SecurityGateway(security_service=service)
        coordinator = LifecycleCoordinator(
            identifier=identifier,
            store_path=(tmp_path / "model.npz") if tmp_path is not None else None,
        )
        sink = GatewayEnforcementSink(
            gateway=gateway, security_service=service, lifecycle=coordinator
        )
        coordinator.sink = sink
        dispatcher = BatchDispatcher(
            identifier, max_batch=1, cache=coordinator.make_cache(capacity=32)
        )
        return service, gateway, coordinator, sink, dispatcher

    def identify_through(self, dispatcher, sink, ready):
        results = dispatcher.submit(ready)
        results.extend(dispatcher.drain())
        for item in results:
            sink(item)
        return results

    def test_quarantine_learn_reidentify_enforce(
        self, partial_identifier, aria_training, tmp_path
    ):
        service, gateway, coordinator, sink, dispatcher = self.build_stack(
            partial_identifier, tmp_path
        )

        # 1. An unknown-model device identifies as unknown and is pinned
        #    to strict isolation; its fingerprint is quarantined.
        ready = aria_ready()
        results = self.identify_through(dispatcher, sink, ready)
        assert results[0].result.is_new_device_type
        record = gateway.device_record(ready.mac)
        assert record.device_type == UNKNOWN_DEVICE_TYPE
        assert record.isolation_level is IsolationLevel.STRICT
        assert ready.mac in coordinator.quarantine

        # A known device's verdict lands in the dispatcher cache (it must
        # become unreachable after learning -- verdicts can shift when the
        # bank grows).
        hue = SetupTrafficSimulator(seed=42).simulate(DEVICE_CATALOG["HueBridge"])
        hue_ready = ReadyFingerprint(
            mac=hue.device_mac,
            fingerprint=Fingerprint.from_packets(hue.packets),
            reason="budget",
        )
        self.identify_through(dispatcher, sink, hue_ready)
        assert len(dispatcher.cache) == 1  # unknown was never cached

        # 2. The operator registers the missing type; with no
        #    re-onboarding the quarantined device is re-identified and its
        #    gateway rule upgraded from strict.
        rekeys_before = gateway.wps.rekey_count
        report = coordinator.learn_device_type("Aria", aria_training)
        assert report.device_type == "Aria"
        assert report.upgraded == (ready.mac,)
        assert report.still_unknown == ()
        assert ready.mac not in coordinator.quarantine
        assert report.devices_per_second > 0

        record = gateway.device_record(ready.mac)
        assert record.device_type == "Aria"
        assert record.isolation_level is IsolationLevel.TRUSTED
        assert gateway.rule_cache.lookup(ready.mac).isolation_level is IsolationLevel.TRUSTED
        assert gateway.rule_cache.replacements >= 1  # the strict rule was replaced
        assert gateway.wps.rekey_count == rekeys_before + 1  # WPS credential rotated
        assert sink.enforced == 3  # two onboardings + one upgrade

        # 3. The dispatcher cache was invalidated: the same fingerprints
        #    now serve post-learning verdicts, old LRU entries unreachable.
        assert len(dispatcher.cache) == 0
        again = self.identify_through(dispatcher, sink, aria_ready(mac=ready.mac))
        assert again[0].result.device_type == "Aria"
        assert not again[0].from_cache

        # 4. The snapshot rolled by learn_device_type carries the new
        #    epoch and reloads to identical verdicts.
        assert report.snapshot_path is not None
        assert bundle_epoch(report.snapshot_path) == report.generation
        reloaded = coordinator.load_snapshot()
        probe = aria_ready(seed=9001).fingerprint
        assert (
            reloaded.identify(probe).device_type
            == partial_identifier.identify(probe).device_type
            == "Aria"
        )

    def test_missed_clear_is_covered_by_the_epoch(
        self, partial_identifier, aria_training
    ):
        # A cache sharing the coordinator's epoch but never registered
        # (the "missed clear" failure mode) still rejects stale verdicts.
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        orphan = IdentificationCache(capacity=8, epoch=coordinator.epoch)
        orphan.put(b"stale", known_result())
        coordinator.learn_device_type("Aria", aria_training)
        assert orphan.get(b"stale") is None
        assert orphan.stale_rejections == 1

    def test_stale_bundle_rejected_on_epoch_mismatch(
        self, partial_identifier, aria_training, tmp_path
    ):
        coordinator = LifecycleCoordinator(
            identifier=partial_identifier, store_path=tmp_path / "model.npz"
        )
        stale_path = tmp_path / "stale.npz"
        coordinator.save_snapshot(stale_path)  # epoch 0 bundle
        coordinator.learn_device_type("Aria", aria_training)  # epoch is now 1
        with pytest.raises(ModelStoreError, match="stale model bundle"):
            coordinator.load_snapshot(stale_path)
        # A fresh snapshot at the current epoch loads cleanly.
        coordinator.save_snapshot()
        assert "Aria" in coordinator.load_snapshot().known_device_types

    def test_unstamped_bundle_loads_only_before_any_learning(
        self, partial_identifier, aria_training, tmp_path
    ):
        # A pre-lifecycle bundle (plain save_identifier, no epoch stamp)
        # is accepted by a runtime that has never learned a type -- the
        # migration path -- but rejected once the bank has grown.
        from repro.identification.model_store import save_identifier

        legacy = tmp_path / "legacy.npz"
        save_identifier(legacy, partial_identifier)
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        assert coordinator.load_snapshot(legacy).known_device_types
        coordinator.learn_device_type("Aria", aria_training)
        with pytest.raises(ModelStoreError, match="stale model bundle"):
            coordinator.load_snapshot(legacy)

    def test_streaming_pipeline_feeds_the_quarantine(self, partial_identifier):
        # Wire the full streaming path: an unknown-model device flows
        # source -> assembler -> dispatcher -> sink and lands quarantined.
        service = IoTSecurityService(identifier=partial_identifier)
        gateway = SecurityGateway(security_service=service)
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        sink = GatewayEnforcementSink(
            gateway=gateway, security_service=service, lifecycle=coordinator
        )
        simulator = SetupTrafficSimulator(seed=606)
        traces = [
            simulator.simulate(DEVICE_CATALOG["Aria"]),
            simulator.simulate(DEVICE_CATALOG["HueBridge"], start_time=5.0),
        ]
        pipeline = StreamingPipeline(
            source=SimulatedSource(traces=traces),
            dispatcher=BatchDispatcher(
                partial_identifier, max_batch=4, cache=coordinator.make_cache()
            ),
            on_identified=sink,
        )
        pipeline.run()
        quarantined_macs = coordinator.quarantine.macs()
        assert traces[0].device_mac in quarantined_macs
        assert traces[1].device_mac not in quarantined_macs
        entry = coordinator.quarantine.devices()[0]
        assert entry.completion_reason in ("budget", "idle", "flush")

    def test_relearn_verdicts_carry_the_relearn_reason(
        self, partial_identifier, aria_training
    ):
        delivered = []
        coordinator = LifecycleCoordinator(
            identifier=partial_identifier, sink=delivered.append
        )
        ready = aria_ready()
        coordinator.quarantine.record(ready.mac, ready.fingerprint)
        coordinator.learn_device_type("Aria", aria_training)
        assert len(delivered) == 1
        assert delivered[0].completion_reason == RELEARN_REASON
        assert delivered[0].result.device_type == "Aria"
        assert delivered[0].mac == ready.mac


# --------------------------------------------------------------------- #
# Durable quarantine: persistence round-trips and corruption rejection.
# --------------------------------------------------------------------- #
class TestQuarantinePersistence:
    def fill_log(self, count=3, capacity=8):
        from repro.identification.lifecycle import QuarantineLog

        log = QuarantineLog(capacity=capacity)
        for index in range(count):
            ready = aria_ready(seed=900 + index)
            log.record(
                ready.mac, ready.fingerprint, now=10.0 + index, completion_reason="idle"
            )
        return log

    def test_round_trip_preserves_entries_order_and_counters(self, tmp_path):
        from repro.identification.lifecycle import load_quarantine_log, save_quarantine_log

        log = self.fill_log()
        log.discard(log.macs()[0])
        path = save_quarantine_log(tmp_path / "quarantine.npz", log, epoch=4)
        restored = load_quarantine_log(path, expected_epoch=4)
        assert restored.capacity == log.capacity
        assert restored.macs() == log.macs()  # insertion order retained
        assert restored.recorded == log.recorded
        assert restored.released == log.released
        for saved, loaded in zip(log.devices(), restored.devices()):
            assert loaded.mac == saved.mac
            assert loaded.quarantined_at == saved.quarantined_at
            assert loaded.completion_reason == saved.completion_reason
            assert (loaded.fingerprint.vectors == saved.fingerprint.vectors).all()

    def test_empty_log_round_trips(self, tmp_path):
        from repro.identification.lifecycle import (
            QuarantineLog,
            load_quarantine_log,
            save_quarantine_log,
        )

        path = save_quarantine_log(tmp_path / "empty.npz", QuarantineLog(capacity=16))
        restored = load_quarantine_log(path)
        assert len(restored) == 0
        assert restored.capacity == 16

    def test_truncated_file_rejected(self, tmp_path):
        from repro.identification.lifecycle import load_quarantine_log, save_quarantine_log

        path = save_quarantine_log(tmp_path / "quarantine.npz", self.fill_log(), epoch=1)
        data = path.read_bytes()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(ModelStoreError):
            load_quarantine_log(truncated)

    def test_version_skew_rejected(self, tmp_path):
        import json

        import numpy as np

        from repro.identification.lifecycle import load_quarantine_log, save_quarantine_log
        from repro.identification.model_store import QUARANTINE_SCHEMA_VERSION

        path = save_quarantine_log(tmp_path / "quarantine.npz", self.fill_log())
        with np.load(path, allow_pickle=False) as archive:
            contents = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(contents.pop("meta")).decode("utf-8"))
        meta["schema_version"] = QUARANTINE_SCHEMA_VERSION + 1
        future = tmp_path / "future.npz"
        encoded = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(future, "wb") as handle:
            np.savez_compressed(handle, meta=encoded, **contents)
        with pytest.raises(ModelStoreError, match="schema version"):
            load_quarantine_log(future)

    def test_model_bundle_is_not_a_quarantine_log(self, tmp_path, partial_identifier):
        from repro.identification.lifecycle import load_quarantine_log
        from repro.identification.model_store import save_identifier

        bundle = tmp_path / "model.npz"
        save_identifier(bundle, partial_identifier)
        with pytest.raises(ModelStoreError, match="not an IoT SENTINEL quarantine log"):
            load_quarantine_log(bundle)

    def test_epoch_mismatch_rejected(self, tmp_path):
        from repro.identification.lifecycle import load_quarantine_log, save_quarantine_log

        path = save_quarantine_log(tmp_path / "quarantine.npz", self.fill_log(), epoch=1)
        with pytest.raises(ModelStoreError, match="stale quarantine log"):
            load_quarantine_log(path, expected_epoch=2)

    def test_coordinator_write_through_and_resume(self, partial_identifier, tmp_path):
        # Every quarantine change is persisted immediately; a restarted
        # coordinator resumes with the exact pending fleet.
        coordinator = LifecycleCoordinator(
            identifier=partial_identifier,
            store_path=tmp_path / "model.npz",
            quarantine_path=tmp_path / "quarantine.npz",
        )
        coordinator.save_snapshot()
        ready = aria_ready()
        unknown = IdentifiedDevice(
            mac=ready.mac, fingerprint=ready.fingerprint, result=unknown_result()
        )
        coordinator.note_identified(unknown, now=5.0)
        assert (tmp_path / "quarantine.npz").exists()

        resumed = LifecycleCoordinator.resume(
            tmp_path / "model.npz", tmp_path / "quarantine.npz"
        )
        assert resumed.quarantine.macs() == [ready.mac]
        assert resumed.epoch.generation == 0

        # A successful identification releases the entry -- durably.
        coordinator.note_identified(
            IdentifiedDevice(
                mac=ready.mac, fingerprint=ready.fingerprint, result=known_result()
            )
        )
        resumed_again = LifecycleCoordinator.resume(
            tmp_path / "model.npz", tmp_path / "quarantine.npz"
        )
        assert len(resumed_again.quarantine) == 0

    def test_learn_persists_quarantine_at_new_epoch(
        self, partial_identifier, aria_training, tmp_path
    ):
        from repro.identification.model_store import load_quarantine_records

        coordinator = LifecycleCoordinator(
            identifier=partial_identifier,
            store_path=tmp_path / "model.npz",
            quarantine_path=tmp_path / "quarantine.npz",
        )
        ready = aria_ready()
        coordinator.quarantine.record(ready.mac, ready.fingerprint)
        report = coordinator.learn_device_type("Aria", aria_training)
        meta, records = load_quarantine_records(tmp_path / "quarantine.npz")
        assert meta["epoch"] == report.generation == 1
        assert records == []  # the fleet was re-identified and released

    def test_quarantine_paths_required(self, partial_identifier):
        coordinator = LifecycleCoordinator(identifier=partial_identifier)
        with pytest.raises(LifecycleError):
            coordinator.save_quarantine()
        with pytest.raises(LifecycleError):
            coordinator.load_quarantine()
