"""repro-lint: per-rule good/bad fixtures, suppressions, reporters, self-lint.

Every rule gets at least one minimal snippet it must fire on and one
compliant rewrite it must stay silent on; the self-lint test at the end
asserts the shipped tree is clean under the shipped config -- the same
invocation the CI gate runs.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.lint import ALL_RULES, LintConfig, lint_paths, lint_source
from tools.lint.engine import parse_suppressions
from tools.lint.reporters import render_json, render_rule_list, render_text
from tools.lint.rules import (
    CanonicalArtifactJson,
    ExceptionHygiene,
    ExportSync,
    LedgerKindConstants,
    NoSetOrderLeak,
    NoUnseededRng,
    NoWallclock,
    SortedFsIteration,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A path inside every default scope, for snippets that should be linted.
SRC_PATH = "src/repro/example.py"


def rule_ids(source: str, rules, path: str = SRC_PATH) -> list[str]:
    return [finding.rule for finding in lint_source(source, path, rules)]


class TestNoUnseededRng:
    RULES = [NoUnseededRng]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nrng = np.random.default_rng()\n",
            "from numpy.random import default_rng\nrng = default_rng()\n",
            "import numpy as np\nx = np.random.choice(10)\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "import random\nx = random.random()\n",
            "import random\nrandom.shuffle(items)\n",
            "import random\nr = random.Random()\n",
            "import random\nr = random.SystemRandom()\n",
        ],
    )
    def test_flags_entropy_sources(self, snippet):
        assert rule_ids(snippet, self.RULES) == ["no-unseeded-rng"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nrng = np.random.default_rng(42)\n",
            "import numpy as np\nrng = np.random.default_rng(derive_seed(seed, 'x'))\n",
            "import random\nr = random.Random(7)\n",
            "rng = rig.default_rng(1)\n",
            "import numpy as np\ng = np.random.Generator(np.random.PCG64(3))\n",
        ],
    )
    def test_allows_seeded_generators(self, snippet):
        assert rule_ids(snippet, self.RULES) == []


class TestNoWallclock:
    RULES = [NoWallclock]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nnow = time.time()\n",
            "import time\nnow = time.time_ns()\n",
            "import time\nstamp = time.gmtime()\n",
            "from datetime import datetime\nnow = datetime.now()\n",
            "import datetime\nnow = datetime.datetime.utcnow()\n",
            "from datetime import date\ntoday = date.today()\n",
        ],
    )
    def test_flags_wallclock_reads(self, snippet):
        assert rule_ids(snippet, self.RULES) == ["no-wallclock"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nstart = time.perf_counter()\n",
            "import time\nstamp = time.gmtime(0)\n",
            "now = clock.now()\n",
            "import time\ntime.sleep(0.1)\n",
        ],
    )
    def test_allows_durations_and_stream_time(self, snippet):
        assert rule_ids(snippet, self.RULES) == []


class TestCanonicalArtifactJson:
    RULES = [CanonicalArtifactJson]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import json\ntext = json.dumps(document)\n",
            "import json\njson.dump(document, handle)\n",
            "import json\ntext = json.dumps(document, indent=2)\n",
            "import json\ntext = json.dumps(document, sort_keys=False, indent=2)\n",
            "import json\ntext = json.dumps(document, sort_keys=True)\n",
        ],
    )
    def test_flags_non_canonical_dumps(self, snippet):
        assert rule_ids(snippet, self.RULES) == ["canonical-artifact-json"]

    @pytest.mark.parametrize(
        "snippet",
        [
            'import json\ntext = json.dumps(d, sort_keys=True, separators=(",", ":"))\n',
            "import json\ntext = json.dumps(d, sort_keys=True, indent=2)\n",
            "import json\ndocument = json.loads(text)\n",
            "import pickle\ndata = pickle.dumps(obj)\n",
        ],
    )
    def test_allows_canonical_or_unrelated(self, snippet):
        assert rule_ids(snippet, self.RULES) == []


class TestSortedFsIteration:
    RULES = [SortedFsIteration]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import os\nfor name in os.listdir(path):\n    print(name)\n",
            "for child in path.iterdir():\n    print(child)\n",
            "files = list(path.glob('*.json'))\n",
            "import glob\nnames = glob.glob('*.py')\n",
            "import os\nfor root, dirs, files in os.walk(top):\n    pass\n",
        ],
    )
    def test_flags_unsorted_scans(self, snippet):
        assert rule_ids(snippet, self.RULES) == ["sorted-fs-iteration"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import os\nfor name in sorted(os.listdir(path)):\n    print(name)\n",
            "files = sorted(path.glob('*.json'))\n",
            "runs = sorted(p.parent for p in root.glob('*/report.json'))\n",
            "count = len(list(path.glob('*.pcap')))\n",
            "newest = max(path.glob('*.log'))\n",
        ],
    )
    def test_allows_sorted_or_order_free_scans(self, snippet):
        assert rule_ids(snippet, self.RULES) == []


class TestNoSetOrderLeak:
    RULES = [NoSetOrderLeak]

    @pytest.mark.parametrize(
        "snippet",
        [
            "for mac in {record.mac for record in records}:\n    emit(mac)\n",
            "for item in set(items):\n    emit(item)\n",
            "rows = list(set(rows))\n",
            "labels = [str(x) for x in set(values)]\n",
            "text = ', '.join({name for name in names})\n",
        ],
    )
    def test_flags_order_leaks(self, snippet):
        assert rule_ids(snippet, self.RULES) == ["no-set-order-leak"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "for mac in sorted({record.mac for record in records}):\n    emit(mac)\n",
            "rows = sorted(set(rows))\n",
            "present = value in {1, 2, 3}\n",
            "merged = set(a) | set(b)\n",
            "unique = {normalise(x) for x in set(values)}\n",
            "count = len(set(values))\n",
        ],
    )
    def test_allows_sorted_or_order_free_uses(self, snippet):
        assert rule_ids(snippet, self.RULES) == []


class TestLedgerKindConstants:
    RULES = [LedgerKindConstants]

    def test_flags_string_literal_kind(self):
        snippet = "record = EvidenceRecord(kind='verdict', mac=mac)\n"
        assert rule_ids(snippet, self.RULES) == ["ledger-kind-constants"]

    def test_flags_positional_literal_kind(self):
        snippet = "from repro.obs import EvidenceRecord\nr = EvidenceRecord('push')\n"
        assert rule_ids(snippet, self.RULES) == ["ledger-kind-constants"]

    def test_allows_constant_kind(self):
        snippet = (
            "from repro.obs.evidence import KIND_VERDICT\n"
            "record = EvidenceRecord(kind=KIND_VERDICT)\n"
        )
        assert rule_ids(snippet, self.RULES) == []


class TestExceptionHygiene:
    RULES = [ExceptionHygiene]

    def test_flags_bare_except(self):
        snippet = "try:\n    work()\nexcept:\n    recover()\n"
        assert rule_ids(snippet, self.RULES) == ["exception-hygiene"]

    def test_flags_swallow_all(self):
        snippet = "try:\n    work()\nexcept Exception:\n    pass\n"
        assert rule_ids(snippet, self.RULES) == ["exception-hygiene"]

    def test_flags_raising_bare_exception(self):
        snippet = "raise Exception('boom')\n"
        assert rule_ids(snippet, self.RULES) == ["exception-hygiene"]

    def test_flags_builtin_raise_in_public_api(self):
        snippet = "raise ValueError('bad field')\n"
        assert rule_ids(snippet, self.RULES, path="src/repro/api.py") == [
            "exception-hygiene"
        ]

    def test_allows_builtin_raise_outside_public_api(self):
        snippet = "raise ValueError('bad field')\n"
        assert rule_ids(snippet, self.RULES, path="src/repro/ml/tree.py") == []

    def test_allows_typed_handler_and_reraise(self):
        snippet = (
            "try:\n"
            "    work()\n"
            "except LedgerError as error:\n"
            "    raise ConfigError('bad ledger') from error\n"
        )
        assert rule_ids(snippet, self.RULES, path="src/repro/api.py") == []


class TestExportSync:
    RULES = [ExportSync]

    def test_flags_unbound_export(self):
        snippet = "def real():\n    pass\n__all__ = ['real', 'ghost']\n"
        assert rule_ids(snippet, self.RULES) == ["export-sync"]

    def test_flags_duplicate_export(self):
        snippet = "x = 1\n__all__ = ['x', 'x']\n"
        assert rule_ids(snippet, self.RULES) == ["export-sync"]

    def test_flags_undeclared_reexport_in_init(self):
        snippet = "from repro.obs.evidence import KIND_PUSH, KIND_APPLY\n__all__ = ['KIND_PUSH']\n"
        assert rule_ids(snippet, self.RULES, path="src/repro/obs/__init__.py") == [
            "export-sync"
        ]

    def test_plain_module_may_import_without_declaring(self):
        snippet = "from pathlib import Path\n__all__ = ['helper']\ndef helper():\n    pass\n"
        assert rule_ids(snippet, self.RULES, path="src/repro/util.py") == []

    def test_type_checking_imports_count_as_bound(self):
        snippet = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.api import GatewayConfig\n"
            "__all__ = ['GatewayConfig', 'TYPE_CHECKING']\n"
        )
        assert rule_ids(snippet, self.RULES) == []

    def test_module_without_all_is_silent(self):
        assert rule_ids("from pathlib import Path\n", self.RULES) == []


class TestSuppressions:
    def test_trailing_pragma_suppresses_its_line(self):
        snippet = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro-lint: disable=no-unseeded-rng -- fixture needs entropy\n"
        )
        assert rule_ids(snippet, [NoUnseededRng]) == []

    def test_standalone_pragma_suppresses_next_line(self):
        snippet = (
            "import numpy as np\n"
            "# repro-lint: disable=no-unseeded-rng -- fixture needs entropy\n"
            "rng = np.random.default_rng()\n"
        )
        assert rule_ids(snippet, [NoUnseededRng]) == []

    def test_pragma_without_reason_is_a_finding_and_does_not_suppress(self):
        snippet = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=no-unseeded-rng\n"
        )
        ids = rule_ids(snippet, [NoUnseededRng])
        assert sorted(ids) == ["bad-suppression", "no-unseeded-rng"]

    def test_pragma_only_covers_named_rules(self):
        snippet = (
            "import numpy as np, json\n"
            "text = json.dumps(np.random.default_rng())  "
            "# repro-lint: disable=no-unseeded-rng -- narrow on purpose\n"
        )
        ids = rule_ids(snippet, [NoUnseededRng, CanonicalArtifactJson])
        assert ids == ["canonical-artifact-json"]

    def test_pragma_examples_in_docstrings_are_inert(self):
        snippet = (
            '"""Docs.\n\n'
            "    x = f()  # repro-lint: disable=no-unseeded-rng\n"
            '"""\n'
        )
        assert rule_ids(snippet, list(ALL_RULES)) == []

    def test_parse_reason_roundtrip(self):
        table = parse_suppressions(
            "x = 1  # repro-lint: disable=a-rule,b-rule -- because reasons\n"
        )
        (entry,) = table.suppressions
        assert entry.rules == ("a-rule", "b-rule")
        assert entry.reason == "because reasons"
        assert entry.target_line == 1

    def test_syntax_error_is_one_finding(self):
        ids = rule_ids("def broken(:\n", list(ALL_RULES))
        assert ids == ["syntax-error"]


class TestReportersAndConfig:
    def _findings(self):
        return lint_source(
            "import numpy as np\nrng = np.random.default_rng()\n",
            SRC_PATH,
            [NoUnseededRng],
        )

    def test_json_report_schema(self):
        document = json.loads(render_json(self._findings(), files_scanned=1))
        assert document["schema"] == 1
        assert document["tool"] == "repro-lint"
        assert document["files_scanned"] == 1
        assert document["counts"] == {"no-unseeded-rng": 1}
        (finding,) = document["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["path"] == SRC_PATH
        assert finding["line"] == 2

    def test_json_report_is_canonical(self):
        findings = self._findings()
        assert render_json(findings, 1) == render_json(list(findings), 1)
        assert render_json(findings, 1).endswith("\n")

    def test_text_report_lines(self):
        text = render_text(self._findings(), files_scanned=3)
        assert f"{SRC_PATH}:2:" in text
        assert "repro-lint: FAILED (1 finding(s)" in text
        assert render_text([], 3) == "repro-lint: OK (3 file(s) clean)"

    def test_rule_list_covers_every_rule(self):
        text = render_rule_list(ALL_RULES)
        for rule_cls in ALL_RULES:
            assert rule_cls.rule_id in text
            assert rule_cls.rationale
            assert rule_cls.example_bad
            assert rule_cls.example_good

    def test_default_config_scopes_tests_out(self):
        config = LintConfig.default()
        assert config.rules_for("tests/test_lint.py") == []
        assert NoUnseededRng in config.rules_for("src/repro/ml/sampling.py")
        assert NoWallclock not in config.rules_for("benchmarks/conftest.py")
        assert NoWallclock not in config.rules_for("src/repro/simulation/clock.py")

    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            LintConfig.default().with_rules(["no-such-rule"])


class TestSelfLint:
    """The shipped tree is clean under the shipped config -- the CI gate."""

    def test_src_tools_benchmarks_examples_are_clean(self):
        findings, files_scanned = lint_paths(
            [
                REPO_ROOT / "src",
                REPO_ROOT / "tools",
                REPO_ROOT / "benchmarks",
                REPO_ROOT / "examples",
            ],
            LintConfig.default(),
            root=REPO_ROOT,
        )
        assert files_scanned > 100
        assert findings == [], "\n".join(finding.render() for finding in findings)

    def test_cli_gate_fails_on_bad_fixture(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        completed = subprocess.run(
            [sys.executable, "-m", "tools.lint", str(bad), "--format", "json"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            timeout=60,
        )
        assert completed.returncode == 1
        document = json.loads(completed.stdout)
        assert document["counts"] == {"no-unseeded-rng": 1}

    def test_cli_gate_passes_on_shipped_tree(self):
        completed = subprocess.run(
            [sys.executable, "-m", "tools.lint", "src", "tools", "benchmarks"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "repro-lint: OK" in completed.stdout

    def test_every_suppression_in_tree_carries_reason(self):
        offenders = []
        for directory in ("src", "tools", "benchmarks", "examples"):
            for path in sorted((REPO_ROOT / directory).rglob("*.py")):
                table = parse_suppressions(path.read_text(encoding="utf-8"))
                offenders.extend(
                    f"{path}:{line}: {message}" for line, message in table.malformed
                )
                offenders.extend(
                    f"{path}:{entry.pragma_line}: empty reason"
                    for entry in table.suppressions
                    if not entry.reason.strip()
                )
        assert offenders == []
