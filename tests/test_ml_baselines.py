"""Tests for the baseline classifiers."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.baselines import GaussianNaiveBayes, KNeighborsClassifier, MajorityClassClassifier


def _blobs(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X_a = rng.normal(loc=0.0, scale=1.0, size=(n // 2, 5))
    X_b = rng.normal(loc=4.0, scale=1.0, size=(n // 2, 5))
    X = np.vstack([X_a, X_b])
    y = np.array(["a"] * (n // 2) + ["b"] * (n // 2))
    return X, y


class TestMajorityClass:
    def test_predicts_majority(self):
        X = np.zeros((5, 2))
        y = np.array(["x", "x", "x", "y", "y"])
        model = MajorityClassClassifier().fit(X, y)
        assert list(model.predict(np.zeros((3, 2)))) == ["x", "x", "x"]

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            MajorityClassClassifier().fit(np.zeros((0, 2)), np.array([]))

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            MajorityClassClassifier().predict(np.zeros((1, 2)))


class TestGaussianNaiveBayes:
    def test_separable_blobs(self):
        X, y = _blobs()
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_log_proba_shape(self):
        X, y = _blobs(40)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.predict_log_proba(X[:7]).shape == (7, 2)

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            GaussianNaiveBayes().predict(np.zeros((1, 5)))

    def test_invalid_training_data(self):
        with pytest.raises(ModelError):
            GaussianNaiveBayes().fit(np.zeros((3, 2)), np.zeros(2))


class TestKNN:
    def test_separable_blobs(self):
        X, y = _blobs()
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_k_larger_than_dataset(self):
        X, y = _blobs(10)
        model = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        assert len(model.predict(X[:2])) == 2

    def test_invalid_k(self):
        with pytest.raises(ModelError):
            KNeighborsClassifier(n_neighbors=0).fit(*_blobs(10))

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            KNeighborsClassifier().predict(np.zeros((1, 5)))

    def test_single_neighbor_memorises(self):
        X, y = _blobs(30)
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == 1.0
