"""Tests for compiled (flattened, vectorized) tree and forest inference."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.compiled import CompiledForest
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


def _dataset(n=200, d=12, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + 0.7 * X[:, 1] - 0.3 * X[:, 2] > 0).astype(int)
    if classes > 2:
        y = y + (X[:, 3] > 0.8).astype(int) * 2
    return X, y


class TestCompiledTree:
    def test_equivalent_to_interpreted_on_random_inputs(self):
        X, y = _dataset()
        tree = DecisionTreeClassifier(random_state=3).fit(X, y)
        compiled = tree.compile()
        queries = np.random.default_rng(9).normal(size=(500, X.shape[1]))
        assert np.array_equal(tree.predict_proba(queries), compiled.predict_proba(queries))
        assert np.array_equal(tree.predict(queries), compiled.predict(queries))

    def test_single_leaf_tree(self):
        X = np.zeros((10, 4))
        y = np.ones(10, dtype=int)
        compiled = DecisionTreeClassifier().fit(X, y).compile()
        assert compiled.node_count == 1
        assert compiled.depth == 0
        assert np.all(compiled.predict(np.zeros((3, 4))) == 1)

    def test_depth_matches_interpreted(self):
        X, y = _dataset(400, seed=5)
        tree = DecisionTreeClassifier(random_state=5).fit(X, y)
        assert tree.compile().depth == tree.depth

    def test_compile_before_fit_raises(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().compile()

    def test_feature_count_mismatch_raises(self):
        X, y = _dataset()
        compiled = DecisionTreeClassifier(random_state=0).fit(X, y).compile()
        with pytest.raises(ModelError):
            compiled.predict_proba(np.zeros((2, X.shape[1] + 1)))


class TestCompiledForest:
    def test_bitwise_equivalent_to_interpreted(self):
        X, y = _dataset(300, seed=1)
        forest = RandomForestClassifier(n_estimators=12, random_state=11).fit(X, y)
        compiled = forest.compile()
        queries = np.random.default_rng(2).normal(size=(800, X.shape[1]))
        assert np.array_equal(forest.predict_proba(queries), compiled.predict_proba(queries))
        assert np.array_equal(forest.predict(queries), compiled.predict(queries))

    def test_multiclass_with_class_subset_trees(self):
        # Force a tree that saw only a label subset into the ensemble (the
        # bootstrap edge case the interpreted path realigns columns for)
        # and check the compiled alignment matches it exactly.
        rng = np.random.default_rng(4)
        X = rng.normal(size=(120, 6))
        y = np.zeros(120, dtype=int)
        y[X[:, 0] > 0] = 1
        y[X[:, 1] > 1.0] = 2
        forest = RandomForestClassifier(n_estimators=4, random_state=4).fit(X, y)
        subset = y != 2
        partial = DecisionTreeClassifier(random_state=4).fit(X[subset], y[subset])
        forest.estimators_.append(partial)
        assert len(partial.classes_) < len(forest.classes_)
        compiled = forest.compile()
        queries = rng.normal(size=(200, 6))
        assert np.array_equal(forest.predict_proba(queries), compiled.predict_proba(queries))

    def test_string_labels(self):
        X, y_int = _dataset(150, classes=2, seed=6)
        y = np.where(y_int == 1, "camera", "plug")
        forest = RandomForestClassifier(n_estimators=5, random_state=6).fit(X, y)
        compiled = forest.compile()
        queries = np.random.default_rng(7).normal(size=(40, X.shape[1]))
        assert np.array_equal(forest.predict(queries), compiled.predict(queries))

    def test_score_and_shapes(self):
        X, y = _dataset(250, seed=8)
        forest = RandomForestClassifier(n_estimators=6, random_state=8).fit(X, y)
        compiled = forest.compile()
        assert compiled.n_estimators == 6
        assert compiled.predict_proba(X).shape == (len(X), len(forest.classes_))
        assert compiled.score(X, y) == forest.score(X, y)

    def test_compile_before_fit_raises(self):
        with pytest.raises(ModelError):
            RandomForestClassifier().compile()


class TestPackUnpack:
    def test_roundtrip_preserves_predictions(self):
        X, y = _dataset(200, seed=10)
        compiled = RandomForestClassifier(n_estimators=7, random_state=10).fit(X, y).compile()
        restored = CompiledForest.unpack(compiled.pack())
        queries = np.random.default_rng(12).normal(size=(300, X.shape[1]))
        assert np.array_equal(compiled.predict_proba(queries), restored.predict_proba(queries))

    def test_missing_array_rejected(self):
        X, y = _dataset(80, seed=13)
        packed = RandomForestClassifier(n_estimators=3, random_state=13).fit(X, y).compile().pack()
        del packed["threshold"]
        with pytest.raises(ModelError):
            CompiledForest.unpack(packed)

    def test_inconsistent_offsets_rejected(self):
        X, y = _dataset(80, seed=14)
        packed = RandomForestClassifier(n_estimators=3, random_state=14).fit(X, y).compile().pack()
        packed["offsets"] = packed["offsets"][:-1]
        with pytest.raises(ModelError):
            CompiledForest.unpack(packed)

    def test_out_of_range_children_rejected(self):
        X, y = _dataset(80, seed=15)
        packed = RandomForestClassifier(n_estimators=2, random_state=15).fit(X, y).compile().pack()
        left = packed["left"].copy()
        inner = np.nonzero(packed["feature"] >= 0)[0]
        if len(inner):
            left[inner[0]] = 10_000
            packed["left"] = left
            with pytest.raises(ModelError):
                CompiledForest.unpack(packed)


class TestParallelFit:
    def test_n_jobs_is_deterministic(self):
        X, y = _dataset(200, seed=20)
        sequential = RandomForestClassifier(n_estimators=6, random_state=20).fit(X, y)
        parallel = RandomForestClassifier(n_estimators=6, random_state=20, n_jobs=2).fit(X, y)
        queries = np.random.default_rng(21).normal(size=(100, X.shape[1]))
        assert np.array_equal(
            sequential.predict_proba(queries), parallel.predict_proba(queries)
        )

    def test_invalid_n_jobs_rejected(self):
        X, y = _dataset(50, seed=22)
        with pytest.raises(ModelError):
            RandomForestClassifier(n_estimators=2, n_jobs=0).fit(X, y)

    def test_n_jobs_minus_one_uses_all_cpus(self):
        X, y = _dataset(60, seed=23)
        forest = RandomForestClassifier(n_estimators=3, random_state=23, n_jobs=-1).fit(X, y)
        assert len(forest.estimators_) == 3


class TestDeepTrees:
    def test_depth_and_importances_survive_deep_trees(self):
        # A monotone single-feature staircase forces one split per distinct
        # value: depth ~ n/2 with min_samples_leaf=1, far beyond what a
        # recursive walk could survive at scale.  Keep it modest but assert
        # the iterative walk agrees with the compiled layout.
        n = 600
        X = np.arange(n, dtype=np.float64).reshape(-1, 1)
        y = (np.arange(n) % 2).astype(int)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.depth >= 100
        importances = tree.feature_importances()
        assert importances.shape == (1,)
        assert importances[0] == pytest.approx(1.0)
        assert tree.compile().depth == tree.depth

    def test_deep_tree_beyond_default_recursion_limit_chunk(self):
        import sys

        limit = sys.getrecursionlimit()
        n = 700
        X = np.arange(n, dtype=np.float64).reshape(-1, 1)
        y = (np.arange(n) % 2).astype(int)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        # The stack-based walks stay flat regardless of the limit.
        sys.setrecursionlimit(120)
        try:
            assert tree.depth > 0
            assert tree.feature_importances()[0] == pytest.approx(1.0)
        finally:
            sys.setrecursionlimit(limit)
