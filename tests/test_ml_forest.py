"""Tests for the Random Forest classifier."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.forest import RandomForestClassifier


def _dataset(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 4, size=(n, 12)).astype(float)
    y = ((X[:, 0] + X[:, 3] + X[:, 7]) > 4).astype(int)
    return X, y


class TestFit:
    def test_accuracy_on_train(self):
        X, y = _dataset()
        forest = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        assert forest.score(X, y) > 0.95

    def test_generalisation_beats_chance(self):
        X, y = _dataset(400)
        X_train, y_train = X[:300], y[:300]
        X_test, y_test = X[300:], y[300:]
        forest = RandomForestClassifier(n_estimators=20, random_state=1).fit(X_train, y_train)
        assert forest.score(X_test, y_test) > 0.85

    def test_number_of_estimators(self):
        X, y = _dataset(50)
        forest = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_invalid_estimator_count(self):
        with pytest.raises(ModelError):
            RandomForestClassifier(n_estimators=0).fit(*_dataset(20))

    def test_empty_dataset(self):
        with pytest.raises(ModelError):
            RandomForestClassifier().fit(np.zeros((0, 4)), np.zeros(0))

    def test_string_labels(self):
        X, y_int = _dataset(80)
        y = np.where(y_int == 1, "target-type", "other")
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert set(forest.predict(X).tolist()) <= {"target-type", "other"}

    def test_without_bootstrap(self):
        X, y = _dataset(60)
        forest = RandomForestClassifier(n_estimators=5, bootstrap=False, random_state=0).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_deterministic_under_seed(self):
        X, y = _dataset(100)
        probe = _dataset(30, seed=9)[0]
        first = RandomForestClassifier(n_estimators=8, random_state=3).fit(X, y).predict(probe)
        second = RandomForestClassifier(n_estimators=8, random_state=3).fit(X, y).predict(probe)
        np.testing.assert_array_equal(first, second)


class TestPredict:
    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            RandomForestClassifier().predict(np.zeros((1, 4)))

    def test_predict_proba_shape_and_normalisation(self):
        X, y = _dataset(100)
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        probabilities = forest.predict_proba(X[:10])
        assert probabilities.shape == (10, 2)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)

    def test_single_sample(self):
        X, y = _dataset(50)
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert forest.predict(X[0]).shape == (1,)

    def test_feature_importances(self):
        X, y = _dataset(150)
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        importances = forest.feature_importances()
        assert importances.shape == (12,)
        assert importances.sum() == pytest.approx(1.0)
        # The informative features (0, 3, 7) should dominate the noise ones.
        informative = importances[[0, 3, 7]].mean()
        noise = np.delete(importances, [0, 3, 7]).mean()
        assert informative > noise
