"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    per_class_accuracy,
    precision_score,
    recall_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial(self):
        assert accuracy_score(["a", "b", "c", "d"], ["a", "b", "x", "y"]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            accuracy_score([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            accuracy_score([1, 2], [1])


class TestConfusionMatrix:
    def test_counts(self):
        matrix, labels = confusion_matrix(["a", "a", "b", "b"], ["a", "b", "b", "b"])
        assert labels == ["a", "b"]
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_explicit_label_order(self):
        matrix, labels = confusion_matrix(["a", "b"], ["b", "b"], labels=["b", "a"])
        assert labels == ["b", "a"]
        assert matrix[0, 0] == 1  # b predicted b
        assert matrix[1, 0] == 1  # a predicted b

    def test_prediction_only_label_included_by_default(self):
        matrix, labels = confusion_matrix(["a"], ["unknown"])
        assert "unknown" in labels
        assert matrix.sum() == 1

    def test_restricting_labels_drops_other_samples(self):
        matrix, labels = confusion_matrix(["a", "c"], ["a", "c"], labels=["a"])
        assert matrix.sum() == 1


class TestPerClassMetrics:
    def test_per_class_accuracy(self):
        accuracy = per_class_accuracy(["a", "a", "b"], ["a", "x", "b"])
        assert accuracy["a"] == 0.5
        assert accuracy["b"] == 1.0

    def test_precision_recall_f1(self):
        y_true = ["pos", "pos", "neg", "neg", "neg"]
        y_pred = ["pos", "neg", "pos", "neg", "neg"]
        assert precision_score(y_true, y_pred, "pos") == 0.5
        assert recall_score(y_true, y_pred, "pos") == 0.5
        assert f1_score(y_true, y_pred, "pos") == 0.5

    def test_precision_when_never_predicted(self):
        assert precision_score(["a", "b"], ["b", "b"], "a") == 0.0

    def test_recall_when_class_absent(self):
        assert recall_score(["a", "a"], ["a", "a"], "z") == 0.0

    def test_f1_zero_when_both_zero(self):
        assert f1_score(["a", "a"], ["b", "b"], "b") == 0.0

    def test_classification_report_contains_all_classes(self):
        report = classification_report(["a", "b", "b"], ["a", "b", "a"])
        assert "a" in report
        assert "b" in report
        assert "accuracy" in report
