"""Tests for sampling utilities (bootstrap, negative subsampling, splits)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.sampling import bootstrap_indices, negative_subsample, train_test_split


class TestBootstrap:
    def test_size_defaults_to_population(self):
        indices = bootstrap_indices(50, rng=np.random.default_rng(0))
        assert len(indices) == 50
        assert indices.min() >= 0
        assert indices.max() < 50

    def test_explicit_size(self):
        assert len(bootstrap_indices(10, size=25, rng=np.random.default_rng(0))) == 25

    def test_empty_population(self):
        with pytest.raises(ModelError):
            bootstrap_indices(0)


class TestNegativeSubsample:
    def test_ratio_10x(self):
        chosen = negative_subsample(range(1000), positive_count=20, ratio=10.0, rng=np.random.default_rng(0))
        assert len(chosen) == 200
        assert len(set(chosen.tolist())) == 200  # without replacement

    def test_returns_all_when_not_enough_negatives(self):
        chosen = negative_subsample(range(30), positive_count=20, ratio=10.0)
        assert sorted(chosen.tolist()) == list(range(30))

    def test_invalid_arguments(self):
        with pytest.raises(ModelError):
            negative_subsample(range(10), positive_count=0)
        with pytest.raises(ModelError):
            negative_subsample(range(10), positive_count=5, ratio=0)
        with pytest.raises(ModelError):
            negative_subsample([], positive_count=5)

    def test_deterministic_under_seed(self):
        first = negative_subsample(range(500), 10, rng=np.random.default_rng(4)).tolist()
        second = negative_subsample(range(500), 10, rng=np.random.default_rng(4)).tolist()
        assert first == second


class TestTrainTestSplit:
    def test_disjoint_and_complete(self):
        train, test = train_test_split(40, test_fraction=0.25, rng=np.random.default_rng(0))
        assert len(train) + len(test) == 40
        assert set(train.tolist()) & set(test.tolist()) == set()

    def test_stratified_split_keeps_all_classes_in_test(self):
        labels = ["a"] * 30 + ["b"] * 10
        _, test = train_test_split(40, test_fraction=0.2, stratify=labels, rng=np.random.default_rng(0))
        test_labels = {labels[index] for index in test}
        assert test_labels == {"a", "b"}

    def test_invalid_fraction(self):
        with pytest.raises(ModelError):
            train_test_split(10, test_fraction=1.5)

    def test_too_few_samples(self):
        with pytest.raises(ModelError):
            train_test_split(1)

    def test_stratify_length_mismatch(self):
        with pytest.raises(ModelError):
            train_test_split(10, stratify=["a"] * 5)
