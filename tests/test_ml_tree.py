"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.tree import DecisionTreeClassifier


def _linearly_separable(n=100, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


class TestFit:
    def test_perfect_fit_on_separable_data(self):
        X, y = _linearly_separable()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.score(X, y) >= 0.97

    def test_single_class(self):
        X = np.zeros((10, 3))
        y = np.ones(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.all(tree.predict(X) == 1)
        assert tree.depth == 0

    def test_max_depth_limits_tree(self):
        X, y = _linearly_separable(200)
        shallow = DecisionTreeClassifier(max_depth=1, random_state=0).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=8, random_state=0).fit(X, y)
        assert shallow.depth <= 1
        assert deep.node_count_ >= shallow.node_count_

    def test_min_samples_leaf(self):
        X, y = _linearly_separable(40)
        tree = DecisionTreeClassifier(min_samples_leaf=10, random_state=0).fit(X, y)
        assert tree.depth <= 3

    def test_string_labels(self):
        X, y_int = _linearly_separable(60)
        y = np.where(y_int == 1, "device", "other")
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        predictions = tree.predict(X)
        assert set(predictions.tolist()) <= {"device", "other"}

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(150, 3))
        y = np.digitize(X[:, 0], [-0.5, 0.5])
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.9
        assert len(tree.classes_) == 3

    def test_empty_dataset_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((0, 3)), np.zeros(0))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((5, 3)), np.zeros(4))

    def test_1d_input_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5))


class TestPredict:
    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().predict(np.zeros((1, 3)))

    def test_predict_proba_rows_sum_to_one(self):
        X, y = _linearly_separable()
        tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        probabilities = tree.predict_proba(X)
        assert probabilities.shape == (len(X), 2)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_feature_count_mismatch(self):
        X, y = _linearly_separable()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        with pytest.raises(ModelError):
            tree.predict(np.zeros((1, 7)))

    def test_single_sample_predict(self):
        X, y = _linearly_separable()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.predict(X[0]).shape == (1,)

    def test_deterministic_under_seed(self):
        X, y = _linearly_separable(80)
        first = DecisionTreeClassifier(max_features="sqrt", random_state=5).fit(X, y)
        second = DecisionTreeClassifier(max_features="sqrt", random_state=5).fit(X, y)
        probe = np.random.default_rng(2).normal(size=(20, 4))
        np.testing.assert_array_equal(first.predict(probe), second.predict(probe))


class TestFeatureSubsampling:
    def test_sqrt_and_log2_and_fraction(self):
        X, y = _linearly_separable(60)
        for max_features in ("sqrt", "log2", 2, 0.5, None):
            tree = DecisionTreeClassifier(max_features=max_features, random_state=0).fit(X, y)
            assert tree.score(X, y) > 0.5

    def test_unknown_string_rejected(self):
        X, y = _linearly_separable(30)
        with pytest.raises(ModelError):
            DecisionTreeClassifier(max_features="cube").fit(X, y)

    def test_feature_importances_sum_to_one(self):
        X, y = _linearly_separable(80)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        importances = tree.feature_importances()
        assert importances.shape == (4,)
        assert importances.sum() == pytest.approx(1.0)
        assert importances[0] > importances[3]
