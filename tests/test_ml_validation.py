"""Tests for stratified k-fold cross-validation."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.validation import StratifiedKFold, cross_val_predict


class TestStratifiedKFold:
    def test_every_sample_tested_exactly_once(self):
        labels = np.array(["a"] * 20 + ["b"] * 30)
        splitter = StratifiedKFold(n_splits=5, random_state=0)
        tested = np.zeros(len(labels), dtype=int)
        for train_indices, test_indices in splitter.split(labels):
            tested[test_indices] += 1
            assert set(train_indices) & set(test_indices) == set()
        assert np.all(tested == 1)

    def test_stratification_keeps_class_balance(self):
        labels = np.array(["a"] * 40 + ["b"] * 10)
        splitter = StratifiedKFold(n_splits=5, random_state=0)
        for _, test_indices in splitter.split(labels):
            test_labels = labels[test_indices]
            assert np.sum(test_labels == "b") == 2
            assert np.sum(test_labels == "a") == 8

    def test_number_of_folds(self):
        labels = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])
        folds = list(StratifiedKFold(n_splits=3, random_state=1).split(labels))
        assert len(folds) == 3

    def test_too_few_samples(self):
        with pytest.raises(ModelError):
            list(StratifiedKFold(n_splits=10).split([0, 1]))

    def test_invalid_split_count(self):
        with pytest.raises(ModelError):
            list(StratifiedKFold(n_splits=1).split([0, 1, 2]))

    def test_deterministic_under_seed(self):
        labels = np.arange(30) % 3
        first = [test.tolist() for _, test in StratifiedKFold(5, random_state=9).split(labels)]
        second = [test.tolist() for _, test in StratifiedKFold(5, random_state=9).split(labels)]
        assert first == second

    def test_different_seeds_differ(self):
        labels = np.arange(40) % 4
        first = [test.tolist() for _, test in StratifiedKFold(5, random_state=1).split(labels)]
        second = [test.tolist() for _, test in StratifiedKFold(5, random_state=2).split(labels)]
        assert first != second


class TestCrossValPredict:
    def test_majority_fit_predict(self):
        X = np.arange(20).reshape(-1, 1)
        y = np.array(["x"] * 10 + ["y"] * 10)

        def fit_predict(X_train, y_train, X_test):
            values, counts = np.unique(y_train, return_counts=True)
            majority = values[np.argmax(counts)]
            return np.full(len(X_test), majority)

        predictions = cross_val_predict(fit_predict, X, y, n_splits=5, random_state=0)
        assert len(predictions) == 20
        assert set(predictions.tolist()) <= {"x", "y"}

    def test_predictions_aligned_with_samples(self):
        X = np.arange(12).reshape(-1, 1)
        y = np.array([0, 1] * 6)

        def fit_predict(X_train, y_train, X_test):
            # Echo back a transformation of the test inputs so alignment is testable.
            return X_test[:, 0] * 10

        predictions = cross_val_predict(fit_predict, X, y, n_splits=3, random_state=0)
        assert [int(value) for value in predictions] == [int(value) * 10 for value in X[:, 0]]
