"""Tests for the persistent model store (save/load of trained banks)."""

import json

import numpy as np
import pytest

from repro.exceptions import ModelStoreError
from repro.features.fingerprint import Fingerprint
from repro.identification.model_store import (
    SCHEMA_VERSION,
    STORE_MAGIC,
    load_bank,
    load_identifier,
    save_bank,
    save_identifier,
)


@pytest.fixture()
def bundle_path(tmp_path):
    return tmp_path / "identifier.npz"


class TestIdentifierRoundTrip:
    def test_verdicts_identical_after_reload(self, small_dataset, trained_identifier, bundle_path):
        save_identifier(bundle_path, trained_identifier)
        loaded = load_identifier(bundle_path)

        probes = small_dataset.fingerprints[::4]
        original = trained_identifier.identify_many(probes)
        reloaded = loaded.identify_many(probes)
        for first, second in zip(original, reloaded):
            assert first.device_type == second.device_type
            assert first.matched_types == second.matched_types

    def test_configuration_round_trips(self, trained_identifier, bundle_path):
        save_identifier(bundle_path, trained_identifier)
        loaded = load_identifier(bundle_path)
        assert loaded.novelty_threshold == trained_identifier.novelty_threshold
        assert (
            loaded.discriminator.references_per_type
            == trained_identifier.discriminator.references_per_type
        )
        assert loaded.bank.device_types == trained_identifier.bank.device_types
        assert len(loaded.registry) == len(trained_identifier.registry)

    def test_loaded_bank_scores_match_batchwise(
        self, small_dataset, trained_identifier, bundle_path
    ):
        save_identifier(bundle_path, trained_identifier)
        loaded = load_identifier(bundle_path)
        matrix = np.stack(
            [
                fingerprint.to_fixed_vector(trained_identifier.bank.fixed_packet_count)
                for fingerprint in small_dataset.fingerprints[:16]
            ]
        )
        original = trained_identifier.bank.score_batch(matrix)
        reloaded = loaded.bank.score_batch(matrix)
        assert original.device_types == reloaded.device_types
        assert np.array_equal(original.positive, reloaded.positive)
        assert np.array_equal(original.accepted, reloaded.accepted)

    def test_loaded_identifier_can_learn_new_types(
        self, small_dataset, trained_identifier, bundle_path
    ):
        save_identifier(bundle_path, trained_identifier)
        loaded = load_identifier(bundle_path)
        donor_type = loaded.bank.device_types[0]
        donors = [
            fingerprint
            for fingerprint in small_dataset.fingerprints
            if fingerprint.device_type == donor_type
        ][:3]
        renamed = [
            Fingerprint(
                vectors=fingerprint.vectors,
                device_type="BrandNewDevice",
                device_mac=fingerprint.device_mac,
            )
            for fingerprint in donors
        ]
        loaded.add_device_type("BrandNewDevice", renamed)
        assert "BrandNewDevice" in loaded.bank.device_types


class TestBankRoundTrip:
    def test_bank_and_registry_round_trip(self, trained_identifier, bundle_path):
        save_bank(bundle_path, trained_identifier.bank, trained_identifier.registry)
        bank, registry = load_bank(bundle_path)
        assert bank.device_types == trained_identifier.bank.device_types
        assert registry.device_types == trained_identifier.registry.device_types
        assert len(registry) == len(trained_identifier.registry)
        for device_type in registry.device_types:
            assert registry.count(device_type) == trained_identifier.registry.count(device_type)

    def test_registry_fingerprints_preserved_exactly(self, trained_identifier, bundle_path):
        save_bank(bundle_path, trained_identifier.bank, trained_identifier.registry)
        _, registry = load_bank(bundle_path)
        original = list(trained_identifier.registry)
        restored = list(registry)
        assert len(original) == len(restored)
        for first, second in zip(original, restored):
            assert first.device_type == second.device_type
            assert np.array_equal(first.vectors, second.vectors)


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelStoreError, match="does not exist"):
            load_identifier(tmp_path / "nope.npz")

    def test_wrong_schema_version_rejected(self, trained_identifier, bundle_path, tmp_path):
        save_identifier(bundle_path, trained_identifier)
        with np.load(bundle_path, allow_pickle=False) as archive:
            contents = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(contents.pop("meta")).decode("utf-8"))
        meta["schema_version"] = SCHEMA_VERSION + 1
        assert meta["magic"] == STORE_MAGIC
        downgraded = tmp_path / "future.npz"
        encoded = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(downgraded, "wb") as handle:
            np.savez_compressed(handle, meta=encoded, **contents)
        with pytest.raises(ModelStoreError, match="schema version"):
            load_identifier(downgraded)

    def test_not_a_bundle_rejected(self, trained_identifier, bundle_path, tmp_path):
        foreign = tmp_path / "foreign.npz"
        np.savez_compressed(foreign, meta=np.frombuffer(b'{"magic": "x"}', dtype=np.uint8))
        with pytest.raises(ModelStoreError, match="not an IoT SENTINEL"):
            load_identifier(foreign)

    def test_truncated_file_rejected(self, trained_identifier, bundle_path, tmp_path):
        save_identifier(bundle_path, trained_identifier)
        data = bundle_path.read_bytes()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(ModelStoreError):
            load_identifier(truncated)

    def test_bit_flip_rejected(self, trained_identifier, bundle_path, tmp_path):
        save_identifier(bundle_path, trained_identifier)
        data = bytearray(bundle_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        corrupted = tmp_path / "corrupted.npz"
        corrupted.write_bytes(bytes(data))
        with pytest.raises(ModelStoreError):
            load_identifier(corrupted)

    def test_missing_forest_arrays_rejected(self, trained_identifier, bundle_path, tmp_path):
        # A bundle whose metadata lists a classifier with no matching
        # arrays (writer bug) must fail as ModelStoreError even though the
        # checksum over the remaining arrays is internally consistent.
        from repro.identification import model_store

        save_identifier(bundle_path, trained_identifier)
        with np.load(bundle_path, allow_pickle=False) as archive:
            contents = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(contents.pop("meta")).decode("utf-8"))
        contents = {
            key: value for key, value in contents.items() if not key.startswith("bank0_")
        }
        meta["checksum"] = model_store._checksum(contents)
        hollowed = tmp_path / "hollow.npz"
        encoded = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(hollowed, "wb") as handle:
            np.savez_compressed(handle, meta=encoded, **contents)
        with pytest.raises(ModelStoreError, match="structurally invalid"):
            load_identifier(hollowed)

    def test_garbage_file_rejected(self, tmp_path):
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ModelStoreError, match="unreadable"):
            load_identifier(garbage)
