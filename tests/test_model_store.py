"""Tests for the persistent model store (save/load of trained banks)."""

import json

import numpy as np
import pytest

from repro.exceptions import ModelStoreError
from repro.features.fingerprint import Fingerprint
from repro.identification.model_store import (
    SCHEMA_VERSION,
    STORE_MAGIC,
    legacy_fallback_counts,
    load_bank,
    load_identifier,
    save_bank,
    save_identifier,
)


def rewrite_bundle(source, target, mutate):
    """Clone a bundle with its (unchecksummed) JSON metadata mutated."""
    with np.load(source, allow_pickle=False) as archive:
        contents = {key: archive[key] for key in archive.files}
    meta = json.loads(bytes(contents.pop("meta")).decode("utf-8"))
    mutate(meta)
    encoded = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    with open(target, "wb") as handle:
        np.savez_compressed(handle, meta=encoded, **contents)
    return target


@pytest.fixture()
def bundle_path(tmp_path):
    return tmp_path / "identifier.npz"


class TestIdentifierRoundTrip:
    def test_verdicts_identical_after_reload(self, small_dataset, trained_identifier, bundle_path):
        save_identifier(bundle_path, trained_identifier)
        loaded = load_identifier(bundle_path)

        probes = small_dataset.fingerprints[::4]
        original = trained_identifier.identify_many(probes)
        reloaded = loaded.identify_many(probes)
        for first, second in zip(original, reloaded):
            assert first.device_type == second.device_type
            assert first.matched_types == second.matched_types

    def test_configuration_round_trips(self, trained_identifier, bundle_path):
        save_identifier(bundle_path, trained_identifier)
        loaded = load_identifier(bundle_path)
        assert loaded.novelty_threshold == trained_identifier.novelty_threshold
        assert (
            loaded.discriminator.references_per_type
            == trained_identifier.discriminator.references_per_type
        )
        assert loaded.bank.device_types == trained_identifier.bank.device_types
        assert len(loaded.registry) == len(trained_identifier.registry)

    def test_loaded_bank_scores_match_batchwise(
        self, small_dataset, trained_identifier, bundle_path
    ):
        save_identifier(bundle_path, trained_identifier)
        loaded = load_identifier(bundle_path)
        matrix = np.stack(
            [
                fingerprint.to_fixed_vector(trained_identifier.bank.fixed_packet_count)
                for fingerprint in small_dataset.fingerprints[:16]
            ]
        )
        original = trained_identifier.bank.score_batch(matrix)
        reloaded = loaded.bank.score_batch(matrix)
        assert original.device_types == reloaded.device_types
        assert np.array_equal(original.positive, reloaded.positive)
        assert np.array_equal(original.accepted, reloaded.accepted)

    def test_loaded_identifier_can_learn_new_types(
        self, small_dataset, trained_identifier, bundle_path
    ):
        save_identifier(bundle_path, trained_identifier)
        loaded = load_identifier(bundle_path)
        donor_type = loaded.bank.device_types[0]
        donors = [
            fingerprint
            for fingerprint in small_dataset.fingerprints
            if fingerprint.device_type == donor_type
        ][:3]
        renamed = [
            Fingerprint(
                vectors=fingerprint.vectors,
                device_type="BrandNewDevice",
                device_mac=fingerprint.device_mac,
            )
            for fingerprint in donors
        ]
        loaded.add_device_type("BrandNewDevice", renamed)
        assert "BrandNewDevice" in loaded.bank.device_types


class TestSchemaV3:
    def test_v4_bundle_has_no_discriminator_rng_state(
        self, trained_identifier, bundle_path
    ):
        save_identifier(bundle_path, trained_identifier)
        with np.load(bundle_path, allow_pickle=False) as archive:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        assert meta["schema_version"] == SCHEMA_VERSION == 4
        assert "rng_state" not in meta["discriminator"]
        assert meta["discriminator"]["selection"] == "deterministic"
        assert meta["discriminator"]["draw"] == "splitmix64"
        assert meta["revision"] == trained_identifier.revision

    def test_v3_bundle_without_draw_field_loads_with_numpy_draw(
        self, trained_identifier, bundle_path, tmp_path
    ):
        """Schema-v3 bundles predate the draw field: their historical
        numpy ``Generator.choice`` reference draw stays pinned on load."""
        save_identifier(bundle_path, trained_identifier)
        legacy = tmp_path / "v3.npz"

        def downgrade(meta):
            meta["schema_version"] = 3
            meta["discriminator"].pop("draw")

        rewrite_bundle(bundle_path, legacy, downgrade)
        loaded = load_identifier(legacy)
        assert loaded.discriminator.draw == "numpy"
        assert loaded.discriminator.is_deterministic

    def test_legacy_v2_bundle_loads_with_explicit_migration(
        self, trained_identifier, bundle_path, tmp_path
    ):
        """A v1/v2 bundle's captured discriminator rng state is discarded
        loudly (warning + counter), never silently."""
        save_identifier(bundle_path, trained_identifier)
        legacy = tmp_path / "legacy.npz"

        def downgrade(meta):
            meta["schema_version"] = 2
            meta.pop("revision")
            meta["discriminator"].pop("selection")
            meta["discriminator"]["rng_state"] = np.random.default_rng(0).bit_generator.state

        rewrite_bundle(bundle_path, legacy, downgrade)
        before = legacy_fallback_counts()
        with pytest.warns(RuntimeWarning, match="discriminator rng state"):
            loaded = load_identifier(legacy)
        after = legacy_fallback_counts()
        assert after["discriminator_rng"] == before["discriminator_rng"] + 1
        assert loaded.revision == 0
        assert loaded.discriminator.is_deterministic
        assert loaded.bank.device_types == trained_identifier.bank.device_types

    def test_missing_bank_rng_state_falls_back_loudly(
        self, trained_identifier, bundle_path, tmp_path
    ):
        """_restore_rng's None path: documented fallback, warned and counted."""
        save_identifier(bundle_path, trained_identifier)
        hollow = tmp_path / "no-bank-rng.npz"

        def drop_bank_rng(meta):
            meta["bank"]["rng_state"] = None

        rewrite_bundle(bundle_path, hollow, drop_bank_rng)
        before = legacy_fallback_counts()
        with pytest.warns(RuntimeWarning, match="nondeterministic generator"):
            loaded = load_identifier(hollow)
        after = legacy_fallback_counts()
        assert after["bank_rng"] == before["bank_rng"] + 1
        assert loaded.bank.device_types == trained_identifier.bank.device_types

    def test_random_mode_identifier_keeps_its_generator_state(
        self, small_dataset, bundle_path
    ):
        """An ablation identifier (selection="random") round-trips its
        shared generator exactly: the reloaded identifier continues the
        original's history-dependent verdict stream."""
        from repro.distance.discrimination import (
            RANDOM_SELECTION,
            EditDistanceDiscriminator,
        )
        from repro.identification.identifier import DeviceTypeIdentifier

        identifier = DeviceTypeIdentifier.train(
            small_dataset.to_registry(), n_estimators=5, random_state=0
        )
        identifier.discriminator = EditDistanceDiscriminator(
            selection=RANDOM_SELECTION, rng=np.random.default_rng(1234)
        )
        # Advance the generator: the captured state must be the *current*
        # one, not the seed.
        identifier.identify_many(small_dataset.fingerprints[:6])
        state_at_save = identifier.discriminator.rng.bit_generator.state

        save_identifier(bundle_path, identifier)
        before = legacy_fallback_counts()
        loaded = load_identifier(bundle_path)
        assert legacy_fallback_counts() == before  # exact restore, no fallback
        assert not loaded.discriminator.is_deterministic
        assert loaded.discriminator.rng.bit_generator.state == state_at_save

        probes = small_dataset.fingerprints[6:18]
        original = identifier.identify_many(probes)
        reloaded = loaded.identify_many(probes)
        for first, second in zip(original, reloaded):
            assert first.device_type == second.device_type
            assert first.discrimination_scores == second.discrimination_scores

    def test_fresh_v3_load_emits_no_fallback(self, trained_identifier, bundle_path):
        save_identifier(bundle_path, trained_identifier)
        before = legacy_fallback_counts()
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            load_identifier(bundle_path)
        assert legacy_fallback_counts() == before


class TestBankRoundTrip:
    def test_bank_and_registry_round_trip(self, trained_identifier, bundle_path):
        save_bank(bundle_path, trained_identifier.bank, trained_identifier.registry)
        bank, registry = load_bank(bundle_path)
        assert bank.device_types == trained_identifier.bank.device_types
        assert registry.device_types == trained_identifier.registry.device_types
        assert len(registry) == len(trained_identifier.registry)
        for device_type in registry.device_types:
            assert registry.count(device_type) == trained_identifier.registry.count(device_type)

    def test_registry_fingerprints_preserved_exactly(self, trained_identifier, bundle_path):
        save_bank(bundle_path, trained_identifier.bank, trained_identifier.registry)
        _, registry = load_bank(bundle_path)
        original = list(trained_identifier.registry)
        restored = list(registry)
        assert len(original) == len(restored)
        for first, second in zip(original, restored):
            assert first.device_type == second.device_type
            assert np.array_equal(first.vectors, second.vectors)


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelStoreError, match="does not exist"):
            load_identifier(tmp_path / "nope.npz")

    def test_wrong_schema_version_rejected(self, trained_identifier, bundle_path, tmp_path):
        save_identifier(bundle_path, trained_identifier)
        with np.load(bundle_path, allow_pickle=False) as archive:
            contents = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(contents.pop("meta")).decode("utf-8"))
        meta["schema_version"] = SCHEMA_VERSION + 1
        assert meta["magic"] == STORE_MAGIC
        downgraded = tmp_path / "future.npz"
        encoded = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(downgraded, "wb") as handle:
            np.savez_compressed(handle, meta=encoded, **contents)
        with pytest.raises(ModelStoreError, match="schema version"):
            load_identifier(downgraded)

    def test_not_a_bundle_rejected(self, trained_identifier, bundle_path, tmp_path):
        foreign = tmp_path / "foreign.npz"
        np.savez_compressed(foreign, meta=np.frombuffer(b'{"magic": "x"}', dtype=np.uint8))
        with pytest.raises(ModelStoreError, match="not an IoT SENTINEL"):
            load_identifier(foreign)

    def test_truncated_file_rejected(self, trained_identifier, bundle_path, tmp_path):
        save_identifier(bundle_path, trained_identifier)
        data = bundle_path.read_bytes()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(ModelStoreError):
            load_identifier(truncated)

    def test_bit_flip_rejected(self, trained_identifier, bundle_path, tmp_path):
        save_identifier(bundle_path, trained_identifier)
        data = bytearray(bundle_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        corrupted = tmp_path / "corrupted.npz"
        corrupted.write_bytes(bytes(data))
        with pytest.raises(ModelStoreError):
            load_identifier(corrupted)

    def test_missing_forest_arrays_rejected(self, trained_identifier, bundle_path, tmp_path):
        # A bundle whose metadata lists a classifier with no matching
        # arrays (writer bug) must fail as ModelStoreError even though the
        # checksum over the remaining arrays is internally consistent.
        from repro.identification import model_store

        save_identifier(bundle_path, trained_identifier)
        with np.load(bundle_path, allow_pickle=False) as archive:
            contents = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(contents.pop("meta")).decode("utf-8"))
        contents = {
            key: value for key, value in contents.items() if not key.startswith("bank0_")
        }
        meta["checksum"] = model_store._checksum(contents)
        hollowed = tmp_path / "hollow.npz"
        encoded = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(hollowed, "wb") as handle:
            np.savez_compressed(handle, meta=encoded, **contents)
        with pytest.raises(ModelStoreError, match="structurally invalid"):
            load_identifier(hollowed)

    def test_garbage_file_rejected(self, tmp_path):
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ModelStoreError, match="unreadable"):
            load_identifier(garbage)
