"""Observability surface: evidence schema, ledger, metrics and wiring."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets import generate_fingerprint_dataset
from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.exceptions import LedgerError, ObservabilityError
from repro.identification.identifier import DeviceTypeIdentifier
from repro.gateway.security_gateway import SecurityGateway
from repro.identification.autopilot import LifecycleAutopilot, TriggerPolicy
from repro.identification.lifecycle import LifecycleCoordinator
from repro.net.addresses import MACAddress
from repro.obs import (
    EVIDENCE_SCHEMA_VERSION,
    QUARANTINE_RECORDED,
    QUARANTINE_RELEASED,
    EvidenceRecord,
    MetricsRegistry,
    Observability,
    VerdictLedger,
    decode_line,
    encode_line,
    ledger_files,
    replay_ledger,
)
from repro.security_service.service import IoTSecurityService
from repro.simulation.clock import SimulatedClock
from repro.streaming import (
    BatchDispatcher,
    GatewayEnforcementSink,
    ShardedFingerprintAssembler,
    SimulatedSource,
    StreamingPipeline,
    replay_trace,
)

CHECK_LEDGER = Path(__file__).resolve().parent.parent / "tools" / "check_ledger.py"


# --------------------------------------------------------------------- #
# Evidence schema.
# --------------------------------------------------------------------- #
class TestEvidenceSchema:
    def test_round_trip_every_field(self):
        record = EvidenceRecord(
            kind="verdict",
            sequence=7,
            stream_time=12.5,
            mac="02:00:00:00:00:01",
            fingerprint_key="ab" * 20,
            verdict="HueBridge",
            matched_types=("HueBridge", "EdnetCam"),
            provenance={"HueBridge": {"reference_indices": [0, 3], "selection_seed": 42}},
            identifier_revision=2,
            cache_epoch=1,
            enforcement_action="RESTRICTED",
            from_cache=True,
            completion_reason="idle",
            detail={"note": "x"},
        )
        assert decode_line(encode_line(record)) == record

    def test_canonical_encoding_is_byte_stable(self):
        record = EvidenceRecord(kind="learn", verdict="Aria", sequence=0)
        assert encode_line(record) == encode_line(record)
        payload = json.loads(encode_line(record))
        assert list(payload) == sorted(payload)
        assert payload["schema"] == EVIDENCE_SCHEMA_VERSION

    def test_unknown_kind_rejected(self):
        with pytest.raises(LedgerError, match="unknown evidence kind"):
            EvidenceRecord(kind="gossip")

    def test_unknown_keys_rejected(self):
        line = encode_line(EvidenceRecord(kind="verdict", sequence=0))
        payload = json.loads(line)
        payload["surprise"] = 1
        with pytest.raises(LedgerError, match="unknown keys"):
            decode_line(json.dumps(payload))

    def test_wrong_schema_version_rejected(self):
        payload = json.loads(encode_line(EvidenceRecord(kind="verdict", sequence=0)))
        payload["schema"] = 2
        with pytest.raises(LedgerError, match="unsupported evidence schema"):
            decode_line(json.dumps(payload))

    def test_non_integer_sequence_rejected(self):
        payload = json.loads(encode_line(EvidenceRecord(kind="verdict", sequence=0)))
        payload["sequence"] = True
        with pytest.raises(LedgerError, match="sequence"):
            decode_line(json.dumps(payload))


# --------------------------------------------------------------------- #
# The ledger: rotation, crash recovery, replay validation.
# --------------------------------------------------------------------- #
class TestLedger:
    def test_sequences_are_monotonic_and_replayable(self, tmp_path):
        path = tmp_path / "ledger.ndjson"
        with VerdictLedger(path) as ledger:
            written = [ledger.append(EvidenceRecord(kind="verdict")) for _ in range(5)]
        assert [record.sequence for record in written] == [0, 1, 2, 3, 4]
        replay = replay_ledger(path)
        assert [record.sequence for record in replay.records] == [0, 1, 2, 3, 4]
        assert replay.truncated_lines == 0

    def test_rotation_boundary_never_splits_a_record(self, tmp_path):
        path = tmp_path / "ledger.ndjson"
        line_size = len(encode_line(EvidenceRecord(kind="verdict", sequence=0)))
        # Room for exactly two records per file: the third append rotates.
        with VerdictLedger(path, max_bytes=2 * line_size + 1, max_files=10) as ledger:
            for _ in range(7):
                ledger.append(EvidenceRecord(kind="verdict"))
            assert ledger.rotations == 3
        files = ledger_files(path)
        assert [file.name for file in files] == [
            "ledger.ndjson.3",
            "ledger.ndjson.2",
            "ledger.ndjson.1",
            "ledger.ndjson",
        ]
        # Every file holds whole lines; the chain replays in order.
        for file in files:
            assert file.read_text().endswith("\n")
        replay = replay_ledger(path)
        assert [record.sequence for record in replay.records] == list(range(7))

    def test_max_files_retires_the_oldest_generation(self, tmp_path):
        path = tmp_path / "ledger.ndjson"
        line_size = len(encode_line(EvidenceRecord(kind="verdict", sequence=0)))
        with VerdictLedger(path, max_bytes=line_size + 1, max_files=2) as ledger:
            for _ in range(5):
                ledger.append(EvidenceRecord(kind="verdict"))
        names = [file.name for file in ledger_files(path)]
        assert names == ["ledger.ndjson.2", "ledger.ndjson.1", "ledger.ndjson"]
        # Oldest records gone, survivors still strictly increasing.
        replay = replay_ledger(path)
        assert [record.sequence for record in replay.records] == [2, 3, 4]

    def test_oversized_record_still_lands_whole(self, tmp_path):
        path = tmp_path / "ledger.ndjson"
        with VerdictLedger(path, max_bytes=64, max_files=4) as ledger:
            big = EvidenceRecord(kind="verdict", detail={"blob": "x" * 500})
            ledger.append(big)
        assert replay_ledger(path).records[0].detail["blob"] == "x" * 500

    def test_truncated_final_line_is_tolerated_and_counted(self, tmp_path):
        path = tmp_path / "ledger.ndjson"
        with VerdictLedger(path) as ledger:
            for _ in range(3):
                ledger.append(EvidenceRecord(kind="verdict"))
        # Simulate a crash mid-append: chop the final line's tail.
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        replay = replay_ledger(path)
        assert [record.sequence for record in replay.records] == [0, 1]
        assert replay.truncated_lines == 1

    def test_reopen_repairs_tail_and_continues_sequence(self, tmp_path):
        path = tmp_path / "ledger.ndjson"
        with VerdictLedger(path) as ledger:
            for _ in range(3):
                ledger.append(EvidenceRecord(kind="verdict"))
        path.write_bytes(path.read_bytes()[:-10])
        with VerdictLedger(path) as ledger:
            # Sequences 0 and 1 survive; the torn 2 is superseded by a new
            # 2 -- and the torn tail was truncated on open, so the new
            # record lands on its own line, not appended to the junk.
            assert ledger.next_sequence == 2
            ledger.append(EvidenceRecord(kind="enforcement"))
        replay = replay_ledger(path)
        assert [record.sequence for record in replay.records] == [0, 1, 2]
        assert replay.truncated_lines == 0

    def test_corrupt_complete_line_raises(self, tmp_path):
        path = tmp_path / "ledger.ndjson"
        with VerdictLedger(path) as ledger:
            ledger.append(EvidenceRecord(kind="verdict"))
        with path.open("a") as handle:
            handle.write("not json\n")
            handle.write(encode_line(EvidenceRecord(kind="verdict", sequence=1)))
        with pytest.raises(LedgerError, match="invalid ledger record"):
            replay_ledger(path)

    def test_non_monotonic_sequence_raises(self, tmp_path):
        path = tmp_path / "ledger.ndjson"
        with path.open("w") as handle:
            handle.write(encode_line(EvidenceRecord(kind="verdict", sequence=5)))
            handle.write(encode_line(EvidenceRecord(kind="verdict", sequence=5)))
        with pytest.raises(LedgerError, match="monotonically"):
            replay_ledger(path)

    def test_append_after_close_raises(self, tmp_path):
        ledger = VerdictLedger(tmp_path / "ledger.ndjson")
        ledger.close()
        with pytest.raises(LedgerError, match="closed"):
            ledger.append(EvidenceRecord(kind="verdict"))


# --------------------------------------------------------------------- #
# Metrics registry.
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_hit_rate_derived_from_counters(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        registry.counter("cache.misses").inc(1)
        registry.register_source("rules", lambda: {"hits": 2, "lookups": 8})
        snapshot = registry.snapshot()
        assert snapshot["cache.hit_rate"] == 0.75
        assert snapshot["rules.hit_rate"] == 0.25
        # Derived, never stored: only snapshot output carries the ratio.
        assert "cache.hit_rate" not in registry._instruments

    def test_snapshot_is_sorted_and_json_serialisable(self):
        registry = MetricsRegistry()
        registry.gauge("z.depth").set(3)
        registry.counter("a.count").inc()
        registry.histogram("m.seconds").observe(0.002)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        json.dumps(snapshot)

    def test_include_timings_false_drops_wall_clock_keys(self):
        registry = MetricsRegistry()
        registry.histogram("dispatcher.identify_batch_seconds").observe(0.01)
        registry.counter("dispatcher.batches").inc()
        registry.register_source("s", lambda: {"identify_seconds": 1.23, "count": 2})
        filtered = registry.snapshot(include_timings=False)
        assert "s.count" in filtered and "dispatcher.batches" in filtered
        assert not any("seconds" in key for key in filtered)

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h.seconds", buckets=(0.001, 0.01))
        for value in (0.0005, 0.005, 5.0):
            histogram.observe(value)
        snapshot = registry.snapshot()
        assert snapshot["h.seconds.count"] == 3
        assert snapshot["h.seconds.le_0.001"] == 1
        assert snapshot["h.seconds.le_0.01"] == 1
        assert snapshot["h.seconds.le_inf"] == 1
        assert snapshot["h.seconds.max"] == 5.0

    def test_instrument_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("x")

    def test_counter_cannot_decrease(self):
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            MetricsRegistry().counter("c").inc(-1)

    def test_non_scalar_source_value_rejected(self):
        registry = MetricsRegistry()
        registry.register_source("bad", lambda: {"value": [1, 2]})
        with pytest.raises(ObservabilityError, match="non-scalar"):
            registry.snapshot()


# --------------------------------------------------------------------- #
# Wired end to end: one small stream through the full serving path.
# --------------------------------------------------------------------- #
TRAINED_TYPES = ["Aria", "HueBridge", "EdnetCam", "WeMoSwitch"]
UNKNOWN_MODEL = "TP-LinkPlugHS110"  # never trained: gets quarantined


@pytest.fixture(scope="module")
def obs_dataset():
    return generate_fingerprint_dataset(
        runs_per_type=10, device_names=TRAINED_TYPES, seed=0
    )


def build_wired_gateway(identifier, tmp_path, seed=42):
    """A fully observed serving path plus a 3-device unknown-model fleet."""
    ledger = VerdictLedger(tmp_path / "ledger.ndjson")
    hub = Observability(ledger=ledger)
    clock = SimulatedClock()
    gateway = SecurityGateway(clock=clock)
    service = IoTSecurityService(identifier=identifier)
    sink = GatewayEnforcementSink(
        gateway=gateway, security_service=service, observability=hub
    )
    coordinator = LifecycleCoordinator(
        identifier=identifier, sink=sink, observability=hub
    )
    sink.lifecycle = coordinator
    gateway.attach_lifecycle(coordinator)
    autopilot = LifecycleAutopilot(
        coordinator, policy=TriggerPolicy(min_cluster_size=3), security_service=service
    )

    simulator = SetupTrafficSimulator(seed=seed)
    traces = [
        simulator.simulate(DEVICE_CATALOG[name], start_time=index * 3.0)
        for index, name in enumerate(TRAINED_TYPES)
    ]
    quiet = max(packet.timestamp for trace in traces for packet in trace.packets)
    unknown = simulator.simulate(DEVICE_CATALOG[UNKNOWN_MODEL], start_time=quiet + 10.0)
    traces.append(unknown)
    for index in range(2):
        mac = MACAddress.from_string(f"02:11:22:00:00:{index + 1:02x}")
        traces.append(replay_trace(unknown, mac, quiet + 20.0 + index * 2.0))

    pipeline = StreamingPipeline(
        source=SimulatedSource(traces=traces),
        dispatcher=BatchDispatcher(identifier, max_batch=4, cache=coordinator.make_cache()),
        assembler=ShardedFingerprintAssembler(shards=4),
        on_identified=sink,
        clock=clock,
        observability=hub,
    )
    return hub, pipeline, autopilot, coordinator


class TestWiring:
    @pytest.fixture()
    def wired(self, obs_dataset, tmp_path):
        # A private identifier per test: learns mutate the bank.
        identifier = DeviceTypeIdentifier.train(
            obs_dataset.to_registry(), random_state=0
        )
        return build_wired_gateway(identifier, tmp_path)

    def test_every_event_lands_in_the_ledger(self, wired):
        hub, pipeline, autopilot, coordinator = wired
        pipeline.run()
        decisions = autopilot.poll(now=pipeline.clock.now())
        learned = [d for d in decisions if d.action == "learned"]
        assert learned, "the unknown-model cluster must trigger an auto-learn"
        autopilot.promote(learned[0].proposal.label)
        hub.ledger.close()

        replay = replay_ledger(hub.ledger.path)
        kinds = {record.kind for record in replay.records}
        assert kinds == {"verdict", "enforcement", "quarantine", "learn", "promotion"}
        sequences = [record.sequence for record in replay.records]
        assert sequences == sorted(sequences) and len(set(sequences)) == len(sequences)

        # Verdict records carry everything needed to reconstruct them.
        for record in replay.records:
            if record.kind == "verdict":
                assert record.fingerprint_key and record.identifier_revision is not None
                assert record.cache_epoch is not None
        # The learn bumped revision and epoch; the promotion carries them.
        promotions = [r for r in replay.records if r.kind == "promotion"]
        assert promotions[0].identifier_revision >= 1
        assert promotions[0].cache_epoch >= 1

    def test_quarantine_transitions_recorded_and_released(self, wired):
        hub, pipeline, autopilot, coordinator = wired
        pipeline.run()
        autopilot.poll(now=pipeline.clock.now())
        hub.ledger.close()
        transitions = [
            record.detail["transition"]
            for record in replay_ledger(hub.ledger.path).records
            if record.kind == "quarantine"
        ]
        assert transitions.count(QUARANTINE_RECORDED) == 3
        # The auto-learn released the whole cluster.
        assert transitions.count(QUARANTINE_RELEASED) == 3

    def test_snapshot_covers_every_subsystem(self, wired):
        hub, pipeline, autopilot, _ = wired
        pipeline.run()
        snapshot = hub.snapshot()
        for key in (
            "assembler.packets_observed",
            "dispatcher.submitted",
            "dispatcher.queue.offered",
            "identification_cache.hits",
            "identification_cache.hit_rate",
            "enforcement_sink.enforced",
            "rule_cache.lookups",
            "lifecycle.relearns",
            "quarantine.recorded",
            "cache_epoch.generation",
            "autopilot.triggers_fired",
            "ledger.verdict_records",
            "dispatcher.identify_batch_seconds.count",
        ):
            assert key in snapshot, key
        assert snapshot["dispatcher.identify_batch_seconds.count"] > 0
        hub.ledger.close()

    def test_check_ledger_tool_passes_on_wired_output(self, wired):
        hub, pipeline, autopilot, _ = wired
        pipeline.run()
        autopilot.poll(now=pipeline.clock.now())
        hub.ledger.close()
        completed = subprocess.run(
            [sys.executable, str(CHECK_LEDGER), str(hub.ledger.path)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "OK" in completed.stdout

    def test_check_ledger_tool_flags_corruption(self, wired, tmp_path):
        hub, pipeline, _, _ = wired
        pipeline.run()
        hub.ledger.close()
        path = hub.ledger.path
        lines = path.read_text().splitlines(keepends=True)
        # Break monotonicity by duplicating a complete line.
        path.write_text("".join(lines) + lines[0])
        completed = subprocess.run(
            [sys.executable, str(CHECK_LEDGER), str(path)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 1
        assert "does not increase" in completed.stdout
