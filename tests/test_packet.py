"""Tests for the layered Packet model and the top-level dissector."""

from repro.net.addresses import MACAddress
from repro.net.layers import dhcp, dns, http, ssdp, tls
from repro.net.layers.arp import OP_REQUEST, ARPPacket
from repro.net.layers.eapol import EAPOLFrame, TYPE_KEY
from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
from repro.net.layers.ipv4 import IPv4Header, PROTO_TCP, PROTO_UDP
from repro.net.layers.ipv6 import IPv6Header, NEXT_HEADER_ICMPV6
from repro.net.layers.icmpv6 import ICMPv6Message, TYPE_ROUTER_SOLICITATION
from repro.net.layers.llc import LLCHeader
from repro.net.layers.tcp import FLAG_ACK, FLAG_PSH, TCPSegment
from repro.net.layers.udp import UDPDatagram
from repro.net.packet import Packet

SRC = MACAddress.from_string("02:00:00:00:00:aa")
DST = MACAddress.from_string("02:00:00:00:00:bb")


def _eth(ethertype: int = ETHERTYPE.IPV4) -> EthernetFrame:
    return EthernetFrame(dst=DST, src=SRC, ethertype=ethertype)


class TestDissection:
    def test_arp_roundtrip(self):
        packet = Packet(
            ethernet=_eth(ETHERTYPE.ARP),
            arp=ARPPacket(OP_REQUEST, SRC, "0.0.0.0", MACAddress.zero(), "192.168.0.9"),
        )
        parsed = Packet.dissect(packet.to_bytes())
        assert parsed.arp is not None
        assert parsed.arp.target_ip == "192.168.0.9"
        assert parsed.src_mac == SRC
        assert not parsed.has_ip
        assert parsed.src_ip is None
        assert parsed.src_port is None

    def test_eapol_roundtrip(self):
        packet = Packet(ethernet=_eth(ETHERTYPE.EAPOL), eapol=EAPOLFrame(packet_type=TYPE_KEY, body=b"\x00" * 95))
        parsed = Packet.dissect(packet.to_bytes())
        assert parsed.eapol is not None
        assert parsed.eapol.is_key

    def test_llc_roundtrip(self):
        packet = Packet(ethernet=_eth(0x0026), llc=LLCHeader(dsap=0x42, ssap=0x42), payload=b"\x00" * 35)
        parsed = Packet.dissect(packet.to_bytes())
        assert parsed.llc is not None
        assert parsed.llc.dsap == 0x42

    def test_udp_dhcp_roundtrip(self):
        packet = Packet(
            ethernet=_eth(),
            ipv4=IPv4Header(src="0.0.0.0", dst="255.255.255.255", protocol=PROTO_UDP),
            udp=UDPDatagram(src_port=68, dst_port=67),
            application=dhcp.discover(SRC, hostname="sensor"),
        )
        parsed = Packet.dissect(packet.to_bytes())
        assert isinstance(parsed.application, dhcp.DHCPMessage)
        assert parsed.application.hostname == "sensor"
        assert parsed.has_raw_data

    def test_udp_dns_roundtrip(self):
        packet = Packet(
            ethernet=_eth(),
            ipv4=IPv4Header(src="192.168.0.9", dst="192.168.0.1", protocol=PROTO_UDP),
            udp=UDPDatagram(src_port=50000, dst_port=53),
            application=dns.query("api.vendor.example"),
        )
        parsed = Packet.dissect(packet.to_bytes())
        assert isinstance(parsed.application, dns.DNSMessage)
        assert parsed.application.question_names == ["api.vendor.example"]

    def test_udp_ssdp_roundtrip(self):
        packet = Packet(
            ethernet=_eth(),
            ipv4=IPv4Header(src="192.168.0.9", dst="239.255.255.250", protocol=PROTO_UDP),
            udp=UDPDatagram(src_port=50001, dst_port=1900),
            application=ssdp.msearch(),
        )
        parsed = Packet.dissect(packet.to_bytes())
        assert isinstance(parsed.application, ssdp.SSDPMessage)
        assert parsed.application.is_msearch

    def test_tcp_http_roundtrip(self):
        packet = Packet(
            ethernet=_eth(),
            ipv4=IPv4Header(src="192.168.0.9", dst="52.1.1.1", protocol=PROTO_TCP),
            tcp=TCPSegment(src_port=51000, dst_port=80, flags=FLAG_PSH | FLAG_ACK),
            application=http.get("/fw", "fw.vendor.example"),
        )
        parsed = Packet.dissect(packet.to_bytes())
        assert isinstance(parsed.application, http.HTTPMessage)
        assert parsed.application.host == "fw.vendor.example"
        assert parsed.dst_port == 80

    def test_tcp_tls_roundtrip(self):
        packet = Packet(
            ethernet=_eth(),
            ipv4=IPv4Header(src="192.168.0.9", dst="52.1.1.2", protocol=PROTO_TCP),
            tcp=TCPSegment(src_port=51000, dst_port=443, flags=FLAG_PSH | FLAG_ACK),
            application=tls.client_hello("cloud.vendor.example"),
        )
        parsed = Packet.dissect(packet.to_bytes())
        assert isinstance(parsed.application, tls.TLSRecord)
        assert parsed.application.is_client_hello

    def test_ipv6_icmpv6_roundtrip(self):
        packet = Packet(
            ethernet=_eth(ETHERTYPE.IPV6),
            ipv6=IPv6Header(src="fe80::1", dst="ff02::2", next_header=NEXT_HEADER_ICMPV6, hop_limit=1),
            icmpv6=ICMPv6Message(icmp_type=TYPE_ROUTER_SOLICITATION, body=b"\x00" * 8),
        )
        parsed = Packet.dissect(packet.to_bytes())
        assert parsed.icmpv6 is not None
        assert parsed.ipv6.dst == "ff02::2"

    def test_unknown_ethertype_keeps_payload(self):
        raw = _eth(0x88CC).to_bytes() + b"\x01\x02\x03" + b"\x00" * 50
        parsed = Packet.dissect(raw)
        assert parsed.payload.startswith(b"\x01\x02\x03")
        assert parsed.application is None

    def test_malformed_upper_layer_does_not_raise(self):
        # An IPv4 ethertype with a garbage (non-IP) payload must not raise.
        raw = _eth(ETHERTYPE.IPV4).to_bytes() + b"\xff" * 10
        parsed = Packet.dissect(raw)
        assert parsed.ipv4 is None
        assert parsed.payload


class TestPacketProperties:
    def test_minimum_frame_padding(self):
        packet = Packet(
            ethernet=_eth(ETHERTYPE.ARP),
            arp=ARPPacket(OP_REQUEST, SRC, "0.0.0.0", MACAddress.zero(), "10.0.0.1"),
        )
        assert len(packet.to_bytes()) == 60
        assert packet.size == 60

    def test_wire_length_preserved_on_dissect(self):
        packet = Packet(
            ethernet=_eth(),
            ipv4=IPv4Header(src="10.0.0.1", dst="10.0.0.2", protocol=PROTO_UDP),
            udp=UDPDatagram(src_port=1, dst_port=2, payload=b"x" * 100),
        )
        raw = packet.to_bytes()
        parsed = Packet.dissect(raw, timestamp=12.5)
        assert parsed.wire_length == len(raw)
        assert parsed.size == len(raw)
        assert parsed.timestamp == 12.5

    def test_raw_data_flag(self):
        with_data = Packet(
            ethernet=_eth(),
            ipv4=IPv4Header(src="10.0.0.1", dst="10.0.0.2", protocol=PROTO_TCP),
            tcp=TCPSegment(src_port=1, dst_port=2, payload=b"data"),
        )
        without_data = Packet(
            ethernet=_eth(),
            ipv4=IPv4Header(src="10.0.0.1", dst="10.0.0.2", protocol=PROTO_TCP),
            tcp=TCPSegment(src_port=1, dst_port=2),
        )
        assert with_data.has_raw_data
        assert not without_data.has_raw_data

    def test_summary_mentions_layers(self):
        packet = Packet(
            ethernet=_eth(),
            ipv4=IPv4Header(src="10.0.0.1", dst="10.0.0.2", protocol=PROTO_UDP),
            udp=UDPDatagram(src_port=5353, dst_port=5353),
            application=dns.mdns_announcement("_x._tcp.local", "host"),
        )
        summary = packet.summary
        assert "UDP 5353->5353" in summary
        assert "DNSMessage" in summary
