"""Tests for the 23 Table-I packet features."""

import numpy as np
import pytest

from repro.features.packet_features import (
    FEATURE_COUNT,
    FEATURE_INDEX,
    FEATURE_NAMES,
    PacketFeatureExtractor,
    port_class,
)
from repro.net.addresses import MACAddress
from repro.net.layers import dhcp, dns
from repro.net.layers.arp import OP_REQUEST, ARPPacket
from repro.net.layers.eapol import EAPOLFrame, TYPE_KEY
from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
from repro.net.layers.ipv4 import IPOption, IPv4Header, OPTION_NOP, OPTION_ROUTER_ALERT, PROTO_UDP
from repro.net.layers.llc import LLCHeader
from repro.net.layers.udp import UDPDatagram
from repro.net.packet import Packet

from tests.conftest import make_tcp_packet, make_udp_packet

SRC = MACAddress.from_string("02:00:00:00:00:01")
DST = MACAddress.from_string("02:00:00:00:00:02")


def feature(vector: np.ndarray, name: str) -> int:
    return int(vector[FEATURE_INDEX[name]])


class TestPortClass:
    def test_no_port(self):
        assert port_class(None) == 0

    def test_well_known(self):
        assert port_class(0) == 1
        assert port_class(80) == 1
        assert port_class(1023) == 1

    def test_registered(self):
        assert port_class(1024) == 2
        assert port_class(49151) == 2

    def test_dynamic(self):
        assert port_class(49152) == 3
        assert port_class(65535) == 3

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            port_class(70000)


class TestFeatureLayout:
    def test_23_features(self):
        assert FEATURE_COUNT == 23
        assert len(FEATURE_NAMES) == 23
        assert len(set(FEATURE_NAMES)) == 23

    def test_vector_shape(self):
        extractor = PacketFeatureExtractor()
        packet = make_tcp_packet(SRC, DST, "10.0.0.1", "10.0.0.2")
        vector = extractor.extract(packet)
        assert vector.shape == (FEATURE_COUNT,)
        assert vector.dtype == np.int64


class TestProtocolFeatures:
    def test_arp_packet(self):
        extractor = PacketFeatureExtractor()
        packet = Packet(
            ethernet=EthernetFrame(dst=MACAddress.broadcast(), src=SRC, ethertype=ETHERTYPE.ARP),
            arp=ARPPacket(OP_REQUEST, SRC, "0.0.0.0", MACAddress.zero(), "10.0.0.9"),
        )
        vector = extractor.extract(packet)
        assert feature(vector, "arp") == 1
        assert feature(vector, "ip") == 0
        assert feature(vector, "raw_data") == 0
        assert feature(vector, "dst_ip_counter") == 0
        assert feature(vector, "src_port_class") == 0

    def test_llc_packet(self):
        extractor = PacketFeatureExtractor()
        packet = Packet(
            ethernet=EthernetFrame(dst=MACAddress.broadcast(), src=SRC, ethertype=0x0026),
            llc=LLCHeader(dsap=0x42, ssap=0x42),
            payload=b"\x00" * 35,
        )
        vector = extractor.extract(packet)
        assert feature(vector, "llc") == 1
        assert feature(vector, "arp") == 0

    def test_eapol_packet(self):
        extractor = PacketFeatureExtractor()
        packet = Packet(
            ethernet=EthernetFrame(dst=DST, src=SRC, ethertype=ETHERTYPE.EAPOL),
            eapol=EAPOLFrame(packet_type=TYPE_KEY, body=b"\x00" * 95),
        )
        vector = extractor.extract(packet)
        assert feature(vector, "eapol") == 1
        assert feature(vector, "ip") == 0

    def test_https_feature(self):
        extractor = PacketFeatureExtractor()
        vector = extractor.extract(make_tcp_packet(SRC, DST, "10.0.0.1", "52.1.1.1", dst_port=443))
        assert feature(vector, "https") == 1
        assert feature(vector, "http") == 0
        assert feature(vector, "tcp") == 1
        assert feature(vector, "udp") == 0

    def test_http_feature(self):
        extractor = PacketFeatureExtractor()
        vector = extractor.extract(make_tcp_packet(SRC, DST, "10.0.0.1", "52.1.1.1", dst_port=80))
        assert feature(vector, "http") == 1
        assert feature(vector, "https") == 0

    def test_dns_vs_mdns(self):
        extractor = PacketFeatureExtractor()
        dns_vector = extractor.extract(make_udp_packet(SRC, DST, "10.0.0.1", "10.0.0.2", dst_port=53))
        mdns_vector = extractor.extract(
            make_udp_packet(SRC, DST, "10.0.0.1", "224.0.0.251", dst_port=5353, src_port=5353)
        )
        assert feature(dns_vector, "dns") == 1
        assert feature(dns_vector, "mdns") == 0
        assert feature(mdns_vector, "mdns") == 1
        assert feature(mdns_vector, "dns") == 0

    def test_ssdp_and_ntp(self):
        extractor = PacketFeatureExtractor()
        ssdp_vector = extractor.extract(
            make_udp_packet(SRC, DST, "10.0.0.1", "239.255.255.250", dst_port=1900)
        )
        ntp_vector = extractor.extract(
            make_udp_packet(SRC, DST, "10.0.0.1", "129.250.35.250", dst_port=123, src_port=123)
        )
        assert feature(ssdp_vector, "ssdp") == 1
        assert feature(ntp_vector, "ntp") == 1

    def test_dhcp_and_bootp(self):
        extractor = PacketFeatureExtractor()
        dhcp_packet = Packet(
            ethernet=EthernetFrame(dst=MACAddress.broadcast(), src=SRC, ethertype=ETHERTYPE.IPV4),
            ipv4=IPv4Header(src="0.0.0.0", dst="255.255.255.255", protocol=PROTO_UDP),
            udp=UDPDatagram(src_port=68, dst_port=67),
            application=dhcp.discover(SRC),
        )
        bootp_packet = Packet(
            ethernet=EthernetFrame(dst=MACAddress.broadcast(), src=SRC, ethertype=ETHERTYPE.IPV4),
            ipv4=IPv4Header(src="0.0.0.0", dst="255.255.255.255", protocol=PROTO_UDP),
            udp=UDPDatagram(src_port=68, dst_port=67),
            application=dhcp.DHCPMessage(op=dhcp.OP_REQUEST, client_mac=SRC, is_dhcp=False),
        )
        dhcp_vector = extractor.extract(dhcp_packet)
        bootp_vector = extractor.extract(bootp_packet)
        assert feature(dhcp_vector, "dhcp") == 1
        assert feature(dhcp_vector, "bootp") == 1
        assert feature(bootp_vector, "dhcp") == 0
        assert feature(bootp_vector, "bootp") == 1

    def test_ip_options(self):
        extractor = PacketFeatureExtractor()
        packet = Packet(
            ethernet=EthernetFrame(dst=DST, src=SRC, ethertype=ETHERTYPE.IPV4),
            ipv4=IPv4Header(
                src="10.0.0.1",
                dst="224.0.0.22",
                protocol=2,
                options=[IPOption(kind=OPTION_ROUTER_ALERT, data=b"\x00\x00"), IPOption(kind=OPTION_NOP)],
            ),
            payload=b"\x22" * 16,
        )
        vector = extractor.extract(packet)
        assert feature(vector, "ip_option_router_alert") == 1
        assert feature(vector, "ip_option_padding") == 1


class TestStatefulFeatures:
    def test_destination_counter_increments_per_new_ip(self):
        extractor = PacketFeatureExtractor()
        first = extractor.extract(make_udp_packet(SRC, DST, "10.0.0.1", "1.1.1.1"))
        second = extractor.extract(make_udp_packet(SRC, DST, "10.0.0.1", "2.2.2.2"))
        repeat = extractor.extract(make_udp_packet(SRC, DST, "10.0.0.1", "1.1.1.1"))
        third = extractor.extract(make_udp_packet(SRC, DST, "10.0.0.1", "3.3.3.3"))
        assert feature(first, "dst_ip_counter") == 1
        assert feature(second, "dst_ip_counter") == 2
        assert feature(repeat, "dst_ip_counter") == 1
        assert feature(third, "dst_ip_counter") == 3
        assert extractor.seen_destinations == 3

    def test_reset_clears_counter(self):
        extractor = PacketFeatureExtractor()
        extractor.extract(make_udp_packet(SRC, DST, "10.0.0.1", "1.1.1.1"))
        extractor.reset()
        vector = extractor.extract(make_udp_packet(SRC, DST, "10.0.0.1", "9.9.9.9"))
        assert feature(vector, "dst_ip_counter") == 1

    def test_packet_size_feature(self):
        extractor = PacketFeatureExtractor()
        small = make_udp_packet(SRC, DST, "10.0.0.1", "1.1.1.1", payload=b"")
        large = make_udp_packet(SRC, DST, "10.0.0.1", "1.1.1.1", payload=b"x" * 400)
        assert feature(extractor.extract(large), "packet_size") > feature(
            extractor.extract(small), "packet_size"
        )

    def test_port_class_features(self):
        extractor = PacketFeatureExtractor()
        vector = extractor.extract(
            make_tcp_packet(SRC, DST, "10.0.0.1", "1.1.1.1", dst_port=443, src_port=50001)
        )
        assert feature(vector, "src_port_class") == 3
        assert feature(vector, "dst_port_class") == 1

    def test_extract_all_shape_and_order(self):
        extractor = PacketFeatureExtractor()
        packets = [
            make_udp_packet(SRC, DST, "10.0.0.1", "1.1.1.1"),
            make_udp_packet(SRC, DST, "10.0.0.1", "2.2.2.2"),
        ]
        matrix = extractor.extract_all(packets)
        assert matrix.shape == (2, FEATURE_COUNT)
        assert matrix[0, FEATURE_INDEX["dst_ip_counter"]] == 1
        assert matrix[1, FEATURE_INDEX["dst_ip_counter"]] == 2

    def test_extract_all_empty(self):
        matrix = PacketFeatureExtractor().extract_all([])
        assert matrix.shape == (0, FEATURE_COUNT)

    def test_no_payload_inspection_needed(self):
        """Features must be computable from an encrypted-looking packet."""
        extractor = PacketFeatureExtractor()
        packet = make_tcp_packet(
            SRC, DST, "10.0.0.1", "52.0.0.1", dst_port=443, payload=bytes(range(64))
        )
        vector = extractor.extract(packet)
        assert feature(vector, "https") == 1
        assert feature(vector, "raw_data") == 1
