"""Tests for pcap reading and writing."""

import struct

import pytest

from repro.exceptions import PcapFormatError
from repro.net.addresses import MACAddress
from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
from repro.net.layers.ipv4 import IPv4Header, PROTO_UDP
from repro.net.layers.udp import UDPDatagram
from repro.net.packet import Packet
from repro.net.pcap import (
    MAGIC_MICROSECONDS,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)

SRC = MACAddress.from_string("02:00:00:00:00:01")
DST = MACAddress.from_string("02:00:00:00:00:02")


def _sample_packets(count: int = 3) -> list[Packet]:
    packets = []
    for index in range(count):
        packets.append(
            Packet(
                ethernet=EthernetFrame(dst=DST, src=SRC, ethertype=ETHERTYPE.IPV4),
                ipv4=IPv4Header(src="10.0.0.1", dst="10.0.0.2", protocol=PROTO_UDP),
                udp=UDPDatagram(src_port=1000 + index, dst_port=53, payload=b"q" * index),
                timestamp=1.0 + index * 0.25,
            )
        )
    return packets


class TestPcapRoundtrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "capture.pcap"
        written = write_pcap(path, _sample_packets())
        packets = read_pcap(path)
        assert written == 3
        assert len(packets) == 3
        assert [packet.src_port for packet in packets] == [1000, 1001, 1002]

    def test_timestamps_preserved(self, tmp_path):
        path = tmp_path / "capture.pcap"
        write_pcap(path, _sample_packets())
        packets = read_pcap(path)
        assert packets[0].timestamp == pytest.approx(1.0, abs=1e-5)
        assert packets[2].timestamp == pytest.approx(1.5, abs=1e-5)

    def test_empty_capture(self, tmp_path):
        path = tmp_path / "empty.pcap"
        write_pcap(path, [])
        assert read_pcap(path) == []

    def test_writer_context_manager(self, tmp_path):
        path = tmp_path / "ctx.pcap"
        with PcapWriter(path) as writer:
            for packet in _sample_packets(2):
                writer.write(packet)
        assert len(read_pcap(path)) == 2

    def test_write_raw_bytes(self, tmp_path):
        path = tmp_path / "raw.pcap"
        frame = _sample_packets(1)[0].to_bytes()
        with PcapWriter(path) as writer:
            writer.write(frame, timestamp=7.0)
        captured = list(PcapReader(path))
        assert captured[0].data == frame
        assert captured[0].timestamp == pytest.approx(7.0, abs=1e-5)

    def test_snaplen_truncation_records_original_length(self, tmp_path):
        path = tmp_path / "snap.pcap"
        packet = _sample_packets(1)[0]
        with PcapWriter(path, snaplen=40) as writer:
            writer.write(packet)
        captured = list(PcapReader(path))
        assert len(captured[0].data) == 40
        assert captured[0].original_length == len(packet.to_bytes())
        assert captured[0].dissect().wire_length == len(packet.to_bytes())


class TestPcapErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapFormatError):
            list(PcapReader(path))

    def test_truncated_global_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1\x02\x00")
        with pytest.raises(PcapFormatError):
            list(PcapReader(path))

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        header = struct.pack("<IHHiIII", MAGIC_MICROSECONDS, 2, 4, 0, 0, 65535, 1)
        record = struct.pack("<IIII", 0, 0, 100, 100) + b"\x00" * 10
        path.write_bytes(header + record)
        with pytest.raises(PcapFormatError):
            list(PcapReader(path))

    def test_unsupported_link_type(self, tmp_path):
        path = tmp_path / "wifi.pcap"
        header = struct.pack("<IHHiIII", MAGIC_MICROSECONDS, 2, 4, 0, 0, 65535, 105)
        path.write_bytes(header)
        with pytest.raises(PcapFormatError):
            list(PcapReader(path))

    def test_write_without_open(self, tmp_path):
        writer = PcapWriter(tmp_path / "x.pcap")
        with pytest.raises(PcapFormatError):
            writer.write(b"\x00")
