"""Tests for the device behaviour-profile model."""

import pytest

from repro.devices.profiles import Connectivity, DeviceProfile, SetupStep, StepKind
from repro.exceptions import DeviceProfileError


def _minimal_steps():
    return (SetupStep(StepKind.DHCP_DISCOVER), SetupStep(StepKind.ARP_ANNOUNCE))


class TestSetupStep:
    def test_defaults(self):
        step = SetupStep(StepKind.DNS_QUERY, target="example.com")
        assert step.repeat == 1
        assert step.probability == 1.0

    def test_invalid_repeat(self):
        with pytest.raises(DeviceProfileError):
            SetupStep(StepKind.DNS_QUERY, repeat=0)

    def test_invalid_probability(self):
        with pytest.raises(DeviceProfileError):
            SetupStep(StepKind.DNS_QUERY, probability=0.0)
        with pytest.raises(DeviceProfileError):
            SetupStep(StepKind.DNS_QUERY, probability=1.5)

    def test_invalid_sizes(self):
        with pytest.raises(DeviceProfileError):
            SetupStep(StepKind.HTTP_GET, payload_size=-1)
        with pytest.raises(DeviceProfileError):
            SetupStep(StepKind.HTTP_GET, size_jitter=-4)

    def test_invalid_port(self):
        with pytest.raises(DeviceProfileError):
            SetupStep(StepKind.UDP_SEND, port=90000)

    def test_immutability(self):
        step = SetupStep(StepKind.DNS_QUERY)
        with pytest.raises(Exception):
            step.repeat = 5


class TestDeviceProfile:
    def test_basic_profile(self):
        profile = DeviceProfile(
            name="TestCam",
            vendor="Acme",
            model="Cam 2000",
            connectivity=(Connectivity.WIFI, Connectivity.ETHERNET),
            steps=_minimal_steps(),
        )
        assert profile.device_type == "TestCam"
        assert profile.step_count == 2
        assert "Acme" in profile.describe()
        assert "wifi/ethernet" in profile.describe()

    def test_requires_name_and_steps(self):
        with pytest.raises(DeviceProfileError):
            DeviceProfile(name="", vendor="A", model="B", steps=_minimal_steps())
        with pytest.raises(DeviceProfileError):
            DeviceProfile(name="X", vendor="A", model="B", steps=())

    def test_with_firmware_creates_new_device_type_variant(self):
        base = DeviceProfile(name="Plug", vendor="Acme", model="P1", steps=_minimal_steps())
        updated = base.with_firmware("2.0.0", extra_steps=(SetupStep(StepKind.NTP_SYNC),))
        assert updated.firmware_version == "2.0.0"
        assert updated.step_count == base.step_count + 1
        assert base.firmware_version == "1.0.0"
        assert updated.metadata["derived_from"] == "1.0.0"

    def test_profiles_are_frozen(self):
        profile = DeviceProfile(name="Plug", vendor="Acme", model="P1", steps=_minimal_steps())
        with pytest.raises(Exception):
            profile.name = "Other"
