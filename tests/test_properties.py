"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.damerau_levenshtein import damerau_levenshtein, normalized_damerau_levenshtein
from repro.features.fingerprint import FIXED_PACKET_COUNT, Fingerprint
from repro.features.packet_features import FEATURE_COUNT, port_class
from repro.gateway.enforcement import EnforcementRule
from repro.gateway.rule_cache import EnforcementRuleCache
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.validation import StratifiedKFold
from repro.net.addresses import MACAddress
from repro.security_service.isolation import IsolationLevel

# --------------------------------------------------------------------------- #
# Strategies.
# --------------------------------------------------------------------------- #

feature_rows = st.lists(
    st.lists(st.integers(min_value=0, max_value=1500), min_size=FEATURE_COUNT, max_size=FEATURE_COUNT),
    min_size=0,
    max_size=30,
)

symbol_sequences = st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=25)

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MACAddress)


# --------------------------------------------------------------------------- #
# MAC addresses.
# --------------------------------------------------------------------------- #


@given(macs)
def test_mac_string_roundtrip(mac):
    assert MACAddress.from_string(str(mac)) == mac


@given(macs)
def test_mac_bytes_roundtrip(mac):
    assert MACAddress.from_bytes(mac.to_bytes()) == mac


# --------------------------------------------------------------------------- #
# Port classes.
# --------------------------------------------------------------------------- #


@given(st.integers(min_value=0, max_value=65535))
def test_port_class_in_range(port):
    assert port_class(port) in (1, 2, 3)


@given(st.integers(min_value=0, max_value=65535))
def test_port_class_monotone_boundaries(port):
    cls = port_class(port)
    if port <= 1023:
        assert cls == 1
    elif port <= 49151:
        assert cls == 2
    else:
        assert cls == 3


# --------------------------------------------------------------------------- #
# Fingerprints.
# --------------------------------------------------------------------------- #


@given(feature_rows)
@settings(max_examples=50)
def test_fingerprint_dedup_never_has_consecutive_duplicates(rows):
    fingerprint = Fingerprint.from_feature_rows(rows)
    vectors = fingerprint.vectors
    for index in range(1, len(vectors)):
        assert not np.array_equal(vectors[index], vectors[index - 1])


@given(feature_rows)
@settings(max_examples=50)
def test_fingerprint_dedup_is_idempotent(rows):
    once = Fingerprint.from_feature_rows(rows)
    twice = Fingerprint.from_feature_rows(once.vectors.tolist())
    assert np.array_equal(once.vectors, twice.vectors)


@given(feature_rows)
@settings(max_examples=50)
def test_fixed_vector_always_276_and_nonnegative(rows):
    fixed = Fingerprint.from_feature_rows(rows).to_fixed_vector()
    assert fixed.shape == (FIXED_PACKET_COUNT * FEATURE_COUNT,)
    assert np.all(fixed >= 0)


@given(feature_rows)
@settings(max_examples=50)
def test_fixed_vector_prefix_matches_unique_vectors(rows):
    fingerprint = Fingerprint.from_feature_rows(rows)
    unique = fingerprint.unique_vectors()[:FIXED_PACKET_COUNT]
    fixed = fingerprint.to_fixed_vector()
    if len(unique):
        np.testing.assert_array_equal(fixed[: unique.size], unique.reshape(-1))


# --------------------------------------------------------------------------- #
# Damerau-Levenshtein distance: metric-like properties.
# --------------------------------------------------------------------------- #


@given(symbol_sequences, symbol_sequences)
@settings(max_examples=100)
def test_distance_symmetry(first, second):
    assert damerau_levenshtein(first, second) == damerau_levenshtein(second, first)


@given(symbol_sequences)
@settings(max_examples=100)
def test_distance_identity(sequence):
    assert damerau_levenshtein(sequence, sequence) == 0


@given(symbol_sequences, symbol_sequences)
@settings(max_examples=100)
def test_distance_bounded_by_longest(first, second):
    assert damerau_levenshtein(first, second) <= max(len(first), len(second))


@given(symbol_sequences, symbol_sequences)
@settings(max_examples=100)
def test_normalized_distance_bounds(first, second):
    if not first and not second:
        return
    value = normalized_damerau_levenshtein(first, second)
    assert 0.0 <= value <= 1.0


@given(symbol_sequences, symbol_sequences, symbol_sequences)
@settings(max_examples=60)
def test_distance_triangle_inequality(a, b, c):
    assert damerau_levenshtein(a, c) <= damerau_levenshtein(a, b) + damerau_levenshtein(b, c) + 1
    # The +1 slack accounts for the restricted (OSA) transposition variant,
    # which is not a strict metric; violations beyond 1 would indicate a bug.


# --------------------------------------------------------------------------- #
# Metrics.
# --------------------------------------------------------------------------- #


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40))
def test_accuracy_of_perfect_predictions_is_one(labels):
    assert accuracy_score(labels, list(labels)) == 1.0


@given(
    st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40),
    st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40),
)
def test_confusion_matrix_total_equals_samples(y_true, y_pred):
    size = min(len(y_true), len(y_pred))
    matrix, _ = confusion_matrix(y_true[:size], y_pred[:size])
    assert matrix.sum() == size


# --------------------------------------------------------------------------- #
# Stratified k-fold.
# --------------------------------------------------------------------------- #


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=1000))
@settings(max_examples=30)
def test_stratified_kfold_partitions_samples(n_splits, seed):
    labels = np.array(["x"] * (n_splits * 3) + ["y"] * (n_splits * 2))
    splitter = StratifiedKFold(n_splits=n_splits, random_state=seed)
    seen = np.zeros(len(labels), dtype=int)
    for train_indices, test_indices in splitter.split(labels):
        assert len(set(train_indices) & set(test_indices)) == 0
        seen[test_indices] += 1
    assert np.all(seen == 1)


# --------------------------------------------------------------------------- #
# Enforcement rule cache.
# --------------------------------------------------------------------------- #


@given(st.lists(macs, min_size=1, max_size=60, unique=True))
@settings(max_examples=30)
def test_rule_cache_lookup_after_store(mac_list):
    cache = EnforcementRuleCache()
    for mac in mac_list:
        cache.store(EnforcementRule(device_mac=mac, isolation_level=IsolationLevel.STRICT))
    assert len(cache) == len(mac_list)
    for mac in mac_list:
        assert cache.lookup(mac) is not None
    assert cache.hit_rate == 1.0


@given(st.lists(macs, min_size=1, max_size=40, unique=True), st.integers(min_value=1, max_value=10))
@settings(max_examples=30)
def test_rule_cache_never_exceeds_max_entries(mac_list, max_entries):
    cache = EnforcementRuleCache(max_entries=max_entries)
    for index, mac in enumerate(mac_list):
        cache.store(EnforcementRule(device_mac=mac, isolation_level=IsolationLevel.STRICT), now=float(index))
        assert len(cache) <= max_entries
