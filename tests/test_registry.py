"""Tests for the fingerprint registry."""

import numpy as np
import pytest

from repro.exceptions import IdentificationError
from repro.features.fingerprint import Fingerprint
from repro.features.packet_features import FEATURE_COUNT
from repro.identification.registry import FingerprintRegistry


def make_fingerprint(device_type=None, size=100):
    row = [0] * FEATURE_COUNT
    row[18] = size
    return Fingerprint.from_feature_rows([row], device_type=device_type)


class TestRegistry:
    def test_add_and_count(self):
        registry = FingerprintRegistry()
        registry.add(make_fingerprint("Aria"))
        registry.add(make_fingerprint("Aria"))
        registry.add(make_fingerprint("HueBridge"))
        assert registry.device_types == ["Aria", "HueBridge"]
        assert registry.count("Aria") == 2
        assert registry.total_fingerprints == 3
        assert len(registry) == 3

    def test_add_with_explicit_label_overrides(self):
        registry = FingerprintRegistry()
        registry.add(make_fingerprint("WrongLabel"), device_type="Correct")
        assert "Correct" in registry
        assert registry.fingerprints_of("Correct")[0].device_type == "Correct"

    def test_unlabelled_fingerprint_rejected(self):
        registry = FingerprintRegistry()
        with pytest.raises(IdentificationError):
            registry.add(make_fingerprint(None))

    def test_fingerprints_of_unknown_type(self):
        with pytest.raises(IdentificationError):
            FingerprintRegistry().fingerprints_of("Nothing")

    def test_fingerprints_excluding(self):
        registry = FingerprintRegistry()
        registry.add_all([make_fingerprint("A"), make_fingerprint("B"), make_fingerprint("C")])
        others = registry.fingerprints_excluding("A")
        assert len(others) == 2
        assert all(fingerprint.device_type != "A" for fingerprint in others)

    def test_iteration_is_sorted_by_type(self):
        registry = FingerprintRegistry()
        registry.add_all([make_fingerprint("Zeta"), make_fingerprint("Alpha")])
        assert [fingerprint.device_type for fingerprint in registry] == ["Alpha", "Zeta"]

    def test_fixed_matrix_shape(self):
        registry = FingerprintRegistry()
        registry.add_all([make_fingerprint("A", size=10), make_fingerprint("A", size=20)])
        matrix = registry.fixed_matrix(registry.fingerprints_of("A"))
        assert matrix.shape == (2, 12 * FEATURE_COUNT)

    def test_fixed_matrix_empty_rejected(self):
        with pytest.raises(IdentificationError):
            FingerprintRegistry().fixed_matrix([])

    def test_training_matrices(self):
        registry = FingerprintRegistry()
        registry.add_all([make_fingerprint("A"), make_fingerprint("B")])
        matrix, labels = registry.training_matrices()
        assert matrix.shape[0] == 2
        assert set(labels.tolist()) == {"A", "B"}
        assert matrix.dtype == np.float64
