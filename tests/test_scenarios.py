"""End-to-end tests of the hostile-campaign harness.

Each stock campaign runs through a real ``build_gateway()`` stack with a
small trained bank, and the assertions pin the *contract*: metrics
reconcile against the evidence ledger, artifacts are byte-deterministic
per seed, and the stdlib gate (``tools/check_scenarios.py``) both passes
on honest artifacts and catches doctored ones.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.scenarios import (
    BurstOverload,
    DhcpChurnCampaign,
    FirmwareDriftCampaign,
    MacRandomizationStorm,
    MimicryCampaign,
    ScenarioSuite,
    artifact_digests,
    scenario_run_name,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small-but-real knobs shared by every test campaign (seconds, not minutes).
SMALL = dict(trained_types=("Aria", "HueBridge", "EdnetCam"), runs_per_type=4)


def _load_check_scenarios():
    spec = importlib.util.spec_from_file_location(
        "check_scenarios", REPO_ROOT / "tools" / "check_scenarios.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _report(run_dir: Path) -> dict:
    return json.loads((run_dir / "report.json").read_text(encoding="utf-8"))


def _assert_contract(report: ScenarioSuite) -> None:
    """The invariants every campaign must satisfy, whatever the model says."""
    metrics = report.metrics
    for flag, value in metrics["reconciliation"].items():
        assert value is True, f"reconciliation flag {flag} failed"
    assert metrics["ledger"]["misidentified_backed"] == metrics["misidentified"]
    assert len(report.devices) == metrics["devices"]
    assert report.report_path.exists() and report.csv_path.exists()


class TestMimicryCampaign:
    def test_impostors_inherit_the_victims_verdict(self, tmp_path):
        campaign = MimicryCampaign(impostors=2, **SMALL)
        report = campaign.run(seed=3, out_dir=tmp_path)
        _assert_contract(report)
        rows = {row["mac"]: row for row in report.devices}
        victim_rows = [
            row for row in report.devices
            if row["role"] == "honest" and row["true_type"] == campaign.victim_type
        ]
        assert len(victim_rows) == 1
        impostor_rows = [row for row in report.devices if row["role"] == "impostor"]
        assert len(impostor_rows) == campaign.impostors
        # replay_trace preserves fingerprint content exactly, so every
        # impostor must land on the same verdict as the victim device.
        for row in impostor_rows:
            assert row["verdict"] == victim_rows[0]["verdict"]
        # Every scored mimicry success is ledger-backed by construction.
        for row in impostor_rows:
            if row["misidentified"]:
                assert row["ledger_backed"] is True
        assert report.metrics["mimicry"]["succeeded"] == sum(
            1 for row in impostor_rows if row["verdict"] == campaign.victim_type
        )
        assert rows  # sanity: scoring saw the population


class TestMacRandomizationStorm:
    def test_rotation_storm_fills_quarantine_and_fools_autopilot(self, tmp_path):
        campaign = MacRandomizationStorm(
            joins=5, quarantine_capacity=3, min_cluster_size=3, **SMALL
        )
        report = campaign.run(seed=3, out_dir=tmp_path)
        _assert_contract(report)
        storm_rows = [row for row in report.devices if row["role"] == "storm"]
        assert len(storm_rows) == campaign.joins
        storm = report.metrics["storm"]
        # One physical device: every phantom identity is either still
        # unknown (evicted before the learn) or carries the provisional
        # label the autopilot minted for the cluster -- never a catalog type.
        assert {row["verdict"] for row in storm_rows} <= (
            {"unknown"} | set(storm["phantom_labels"])
        )
        assert len(storm["phantom_macs"]) == campaign.joins
        autopilot = report.metrics["autopilot"]
        if autopilot["triggers_fired"]:
            # The only cluster on offer is the phantom one, so any fired
            # trigger is a false trigger -- and the learn is provisional.
            assert autopilot["false_triggers"] == autopilot["triggers_fired"]
            assert autopilot["false_trigger_rate"] == 1.0
            assert storm["evictions"] >= 1  # capacity < joins forced churn
            assert all(
                label.startswith("unknown-model-") for label in storm["phantom_labels"]
            )


class TestFirmwareDriftCampaign:
    def test_fleet_members_agree_on_drift(self, tmp_path):
        campaign = FirmwareDriftCampaign(
            fleet_size=2,
            drift_device="EdnetCam",
            drift_behavior="Lightify",
            retype_device="HueBridge",
            retype_behavior="Aria",
            **SMALL,
        )
        report = campaign.run(seed=3, out_dir=tmp_path)
        _assert_contract(report)
        assert report.metrics["fleet_agreement"] is True
        reports = report.metrics["reprofile"]
        assert set(reports) == {"gw-0", "gw-1"}
        for view in reports.values():
            assert view["examined"] == len(campaign.trained_types)
            accounted = (
                len(view["unchanged"]) + len(view["drifted"])
                + len(view["retyped"]) + len(view["still_unknown"])
            )
            assert accounted + view["deferred"] == view["examined"]
        # Each member wrote its own evidence ledger.
        assert (report.run_dir / "gw-0-ledger.ndjson").exists()
        assert (report.run_dir / "gw-1-ledger.ndjson").exists()


class TestDhcpChurnCampaign:
    def test_lease_races_leave_the_address_map_coherent(self, tmp_path):
        campaign = DhcpChurnCampaign(**SMALL)
        report = campaign.run(seed=3, out_dir=tmp_path)
        _assert_contract(report)
        dhcp = report.metrics["dhcp"]
        assert dhcp["stale_ip_mappings"] == 0
        assert dhcp["dangling_ip_entries"] == 0
        # The regression: the rotated identity keeps the contested lease
        # even after its predecessor disconnects.
        assert dhcp["rotated_lease_holder"] == dhcp["rotated_mac"]
        # Repeat sightings of the rotated MAC refresh, never duplicate.
        assert dhcp["quarantine_recorded"] >= dhcp["quarantine_entries"]
        rotating = [row for row in report.devices if row["role"] == "rotating"]
        assert len(rotating) == 2


class TestBurstOverloadAccounting:
    """Satellite: dropped/blocked counters, dispatcher stats and ledger
    records reconcile exactly -- no silently lost verdicts."""

    @pytest.mark.parametrize("policy", ["drop", "block"])
    def test_every_fingerprint_is_a_verdict_or_a_counted_drop(self, tmp_path, policy):
        campaign = BurstOverload(
            devices=10, max_batch=8, queue_capacity=4, backpressure=policy, **SMALL
        )
        report = campaign.run(seed=3, out_dir=tmp_path / policy)
        _assert_contract(report)
        burst = report.metrics["burst"]
        snapshot = report.metrics["snapshot"]
        assert burst["exact_accounting"] is True
        # Every assembled fingerprint was submitted; every offer is a
        # submission or a counted blocked-retry; every offer was accepted,
        # dropped, or pushed back; every accept became a verdict; every
        # verdict left an evidence record.
        assert burst["fingerprints_emitted"] == burst["submitted"]
        assert burst["offered"] == burst["submitted"] + burst["blocked"]
        assert burst["offered"] == burst["accepted"] + burst["dropped"] + burst["blocked"]
        assert burst["accepted"] == burst["identified"]
        assert report.metrics["ledger"]["verdict_records"] == burst["identified"]
        assert snapshot["dispatcher.dropped"] == burst["dropped"]
        if policy == "drop":
            # Queue capacity below one batch with simultaneous joins must
            # actually shed load -- otherwise the scenario tests nothing.
            assert burst["dropped"] > 0
            assert snapshot["dispatcher.queue.blocked"] == 0
            unassessed = sum(1 for row in report.devices if row["verdict"] is None)
            assert unassessed == report.metrics["unassessed"] > 0
        else:
            # Block policy trades latency for completeness: nothing is
            # dropped, the queue counted MUST_DRAIN pushback instead.
            assert burst["dropped"] == 0
            assert snapshot["dispatcher.queue.blocked"] > 0
            assert burst["identified"] == burst["fingerprints_emitted"]


class TestDeterminismAndGate:
    def test_same_seed_is_byte_identical_and_gate_compares(self, tmp_path):
        campaign_a = DhcpChurnCampaign(**SMALL)
        campaign_b = DhcpChurnCampaign(**SMALL)
        report_a = campaign_a.run(seed=11, out_dir=tmp_path / "a")
        report_b = campaign_b.run(seed=11, out_dir=tmp_path / "b")
        assert artifact_digests(report_a.run_dir) == artifact_digests(report_b.run_dir)
        checker = _load_check_scenarios()
        assert checker.main([str(tmp_path / "a")]) == 0
        assert checker.main(["--compare", str(tmp_path / "a"), str(tmp_path / "b")]) == 0

    def test_run_names_are_deterministic_and_wallclock_free(self, tmp_path):
        campaign = BurstOverload(devices=6, **SMALL)
        report = campaign.run(seed=9, out_dir=tmp_path)
        assert report.run_name == scenario_run_name("burst-overload", 9) == "burst-overload__seed-9"
        assert report.run_dir.name == report.run_name
        payload = _report(report.run_dir)
        assert payload["campaign"]["devices"] == 6  # knobs recorded verbatim
        # No timing-derived keys may leak into the deterministic artifact.
        assert not [key for key in payload["metrics"]["snapshot"] if "seconds" in key]

    def test_gate_catches_doctored_artifacts(self, tmp_path):
        campaign = DhcpChurnCampaign(**SMALL)
        report = campaign.run(seed=5, out_dir=tmp_path)
        checker = _load_check_scenarios()
        assert checker.main([str(report.run_dir)]) == 0

        # Doctor the report: hide a misidentification claim's flag.
        payload = _report(report.run_dir)
        payload["devices"][0]["verdict"] = "D-LinkSiren"  # wrong, unclaimed
        (report.run_dir / "report.json").write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        assert checker.main([str(report.run_dir)]) == 1

    def test_gate_requires_evidence_for_misidentifications(self, tmp_path):
        campaign = MimicryCampaign(impostors=1, **SMALL)
        report = campaign.run(seed=3, out_dir=tmp_path)
        checker = _load_check_scenarios()
        assert checker.main([str(report.run_dir)]) == 0
        # Truncate the evidence ledger: claims lose their backing trail
        # (and the per-kind counts stop matching), so the gate must fail.
        ledger = report.run_dir / "gateway-ledger.ndjson"
        lines = ledger.read_text(encoding="utf-8").splitlines()
        kept = [line for line in lines if json.loads(line).get("kind") != "verdict"]
        ledger.write_text("\n".join(kept) + "\n", encoding="utf-8")
        assert checker.main([str(report.run_dir)]) == 1


class TestScenarioSuite:
    def test_suite_writes_manifest_with_digests(self, tmp_path):
        suite = ScenarioSuite(
            [DhcpChurnCampaign(**SMALL), BurstOverload(devices=6, **SMALL)]
        )
        reports = suite.run(seed=2, out_dir=tmp_path)
        assert [report.scenario for report in reports] == ["dhcp-churn", "burst-overload"]
        manifest = json.loads((tmp_path / "suite__seed-2.json").read_text(encoding="utf-8"))
        assert manifest["seed"] == 2
        by_name = {entry["scenario"]: entry for entry in manifest["scenarios"]}
        for report in reports:
            entry = by_name[report.scenario]
            assert entry["run_name"] == report.run_name
            assert entry["digests"] == artifact_digests(report.run_dir)
            assert "misidentification_rate" in entry["headline"]
        checker = _load_check_scenarios()
        assert checker.main([str(tmp_path)]) == 0
