"""Tests for the SDN substrate: flow rules, switch and controller."""

import pytest

from repro.exceptions import SdnError
from repro.net.addresses import MACAddress
from repro.sdn.controller import SdnController
from repro.sdn.openflow import FlowAction, FlowMatch, FlowRule
from repro.sdn.switch import OpenVSwitch, SwitchPort

from tests.conftest import make_tcp_packet, make_udp_packet

DEVICE = MACAddress.from_string("02:00:00:00:00:10")
OTHER = MACAddress.from_string("02:00:00:00:00:20")
GATEWAY = MACAddress.from_string("02:00:00:00:00:01")


class TestFlowMatch:
    def test_wildcard_matches_everything(self):
        packet = make_tcp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.8.8")
        assert FlowMatch().matches_packet(packet)
        assert FlowMatch().specificity == 0

    def test_mac_match(self):
        packet = make_tcp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.8.8")
        assert FlowMatch(src_mac=DEVICE).matches_packet(packet)
        assert not FlowMatch(src_mac=OTHER).matches_packet(packet)

    def test_ip_and_port_match(self):
        packet = make_tcp_packet(DEVICE, GATEWAY, "10.0.0.2", "52.1.1.1", dst_port=443)
        assert FlowMatch(dst_ip="52.1.1.1", protocol="tcp", dst_port=443).matches_packet(packet)
        assert not FlowMatch(dst_ip="52.1.1.2").matches_packet(packet)
        assert not FlowMatch(protocol="udp").matches_packet(packet)

    def test_ip_fields_do_not_match_non_ip_packets(self):
        from repro.net.layers.arp import OP_REQUEST, ARPPacket
        from repro.net.layers.ethernet import ETHERTYPE, EthernetFrame
        from repro.net.packet import Packet

        arp = Packet(
            ethernet=EthernetFrame(dst=MACAddress.broadcast(), src=DEVICE, ethertype=ETHERTYPE.ARP),
            arp=ARPPacket(OP_REQUEST, DEVICE, "0.0.0.0", MACAddress.zero(), "10.0.0.1"),
        )
        assert not FlowMatch(dst_ip="10.0.0.1").matches_packet(arp)
        assert FlowMatch(src_mac=DEVICE).matches_packet(arp)

    def test_specificity_counts_fields(self):
        match = FlowMatch(src_mac=DEVICE, dst_ip="1.2.3.4", dst_port=80)
        assert match.specificity == 3

    def test_negative_priority_rejected(self):
        with pytest.raises(SdnError):
            FlowRule(match=FlowMatch(), action=FlowAction.DROP, priority=-1)


class TestOpenVSwitch:
    def test_priority_ordering(self):
        switch = OpenVSwitch()
        switch.install_rule(FlowRule(FlowMatch(src_mac=DEVICE), FlowAction.DROP, priority=10))
        switch.install_rule(
            FlowRule(FlowMatch(src_mac=DEVICE, dst_ip="52.1.1.1"), FlowAction.FORWARD, priority=50)
        )
        allowed = switch.process(make_tcp_packet(DEVICE, GATEWAY, "10.0.0.2", "52.1.1.1"))
        blocked = switch.process(make_tcp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.8.8"))
        assert allowed.forwarded
        assert blocked.dropped
        assert switch.packets_processed == 2
        assert switch.packets_dropped == 1

    def test_rule_hit_counters(self):
        switch = OpenVSwitch()
        rule = FlowRule(FlowMatch(src_mac=DEVICE), FlowAction.FORWARD, priority=1)
        switch.install_rule(rule)
        switch.process(make_tcp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.8.8"))
        switch.process(make_tcp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.4.4"))
        assert rule.packet_count == 2

    def test_default_action_on_miss(self):
        permissive = OpenVSwitch(default_action=FlowAction.FORWARD)
        restrictive = OpenVSwitch(default_action=FlowAction.DROP)
        packet = make_udp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.8.8")
        assert permissive.process(packet).forwarded
        assert restrictive.process(packet).dropped

    def test_packet_in_handler_invoked_on_miss(self):
        seen = []

        def handler(packet, switch):
            seen.append(packet)
            return FlowAction.DROP

        switch = OpenVSwitch(packet_in_handler=handler)
        decision = switch.process(make_udp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.8.8"))
        assert decision.dropped
        assert decision.sent_to_controller
        assert len(seen) == 1
        assert switch.packets_to_controller == 1

    def test_send_to_controller_action(self):
        switch = OpenVSwitch(packet_in_handler=lambda packet, sw: FlowAction.FORWARD)
        switch.install_rule(FlowRule(FlowMatch(src_mac=DEVICE), FlowAction.SEND_TO_CONTROLLER, priority=5))
        decision = switch.process(make_udp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.8.8"))
        assert decision.forwarded
        assert decision.sent_to_controller

    def test_remove_rules_by_cookie(self):
        switch = OpenVSwitch()
        switch.install_rule(FlowRule(FlowMatch(src_mac=DEVICE), FlowAction.DROP, priority=1, cookie="a"))
        switch.install_rule(FlowRule(FlowMatch(src_mac=OTHER), FlowAction.DROP, priority=1, cookie="b"))
        assert switch.remove_rules("a") == 1
        assert switch.rule_count == 1
        with pytest.raises(SdnError):
            switch.remove_rules("")

    def test_flush(self):
        switch = OpenVSwitch()
        switch.install_rule(FlowRule(FlowMatch(), FlowAction.DROP, priority=1))
        switch.flush()
        assert switch.rule_count == 0

    def test_port_learning(self):
        switch = OpenVSwitch()
        switch.process(make_udp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.8.8"), ingress_port=SwitchPort.WIFI)
        assert switch.port_of(DEVICE) == SwitchPort.WIFI
        assert switch.port_of(OTHER) is None


class TestSdnController:
    def test_attach_and_dispatch(self):
        controller = SdnController()
        switch = OpenVSwitch()
        controller.attach_switch(switch)

        class DropModule:
            name = "drop-all"

            def on_packet_in(self, packet, switch):
                return FlowAction.DROP

        controller.register_module(DropModule())
        decision = switch.process(make_udp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.8.8"))
        assert decision.dropped
        assert controller.packet_in_count == 1

    def test_modules_consulted_in_order(self):
        controller = SdnController()
        switch = OpenVSwitch()
        controller.attach_switch(switch)
        calls = []

        class Pass:
            name = "pass"

            def on_packet_in(self, packet, switch):
                calls.append("pass")
                return None

        class Allow:
            name = "allow"

            def on_packet_in(self, packet, switch):
                calls.append("allow")
                return FlowAction.FORWARD

        controller.register_module(Pass())
        controller.register_module(Allow())
        switch.process(make_udp_packet(DEVICE, GATEWAY, "10.0.0.2", "8.8.8.8"))
        assert calls == ["pass", "allow"]

    def test_duplicate_switch_and_module_rejected(self):
        controller = SdnController()
        switch = OpenVSwitch()
        controller.attach_switch(switch)
        with pytest.raises(SdnError):
            controller.attach_switch(OpenVSwitch())

        class Module:
            name = "m"

            def on_packet_in(self, packet, switch):
                return None

        controller.register_module(Module())
        with pytest.raises(SdnError):
            controller.register_module(Module())

    def test_install_rule_via_controller(self):
        controller = SdnController()
        switch = OpenVSwitch(name="br0")
        controller.attach_switch(switch)
        controller.install_rule("br0", FlowRule(FlowMatch(src_mac=DEVICE), FlowAction.DROP, priority=3, cookie="x"))
        assert switch.rule_count == 1
        assert controller.remove_rules("br0", "x") == 1
        with pytest.raises(SdnError):
            controller.switch("missing")

    def test_detach_switch(self):
        controller = SdnController()
        switch = OpenVSwitch()
        controller.attach_switch(switch)
        controller.detach_switch(switch.name)
        assert switch.packet_in_handler is None
