"""Tests for the Security Gateway (onboarding, authorisation, datapath)."""

import pytest

from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.exceptions import EnforcementError
from repro.gateway.enforcement import NetworkOverlay
from repro.gateway.security_gateway import SecurityGateway
from repro.net.addresses import MACAddress
from repro.security_service.isolation import IsolationLevel
from repro.security_service.service import IoTSecurityService, SecurityAssessment
from repro.security_service.vulnerability import VulnerabilityRecord

from tests.conftest import make_tcp_packet, make_udp_packet

EXTERNAL_MAC = MACAddress.from_string("02:00:00:00:0e:ee")


@pytest.fixture()
def service(trained_identifier):
    return IoTSecurityService(identifier=trained_identifier)


@pytest.fixture()
def gateway(service):
    return SecurityGateway(security_service=service)


def _onboard(gateway, name, seed=812):
    simulator = SetupTrafficSimulator(seed=seed)
    trace = simulator.simulate(DEVICE_CATALOG[name])
    record = gateway.onboard_device(trace.packets)
    return record, trace


class TestOnboarding:
    def test_vulnerable_device_restricted_and_untrusted(self, gateway):
        record, _ = _onboard(gateway, "EdnetCam")
        assert record.device_type == "EdnetCam"
        assert record.isolation_level is IsolationLevel.RESTRICTED
        assert record.overlay is NetworkOverlay.UNTRUSTED
        assert record.enforcement_rule is not None
        assert record.enforcement_rule.allowed_destinations
        assert gateway.rule_cache.lookup(record.mac) is record.enforcement_rule
        assert gateway.switch.rule_count >= 2

    def test_clean_device_trusted_and_rekeyed(self, gateway):
        record, _ = _onboard(gateway, "Aria", seed=813)
        assert record.isolation_level is IsolationLevel.TRUSTED
        assert record.overlay is NetworkOverlay.TRUSTED
        credential = gateway.wps.credential_of(record.mac)
        assert credential is not None
        assert credential.overlay is NetworkOverlay.TRUSTED
        assert gateway.wps.rekey_count == 1

    def test_unknown_device_strict(self, gateway):
        record, _ = _onboard(gateway, "MAXGateway", seed=814)
        assert record.device_type == "unknown"
        assert record.isolation_level is IsolationLevel.STRICT

    def test_empty_capture_rejected(self, gateway):
        with pytest.raises(EnforcementError):
            gateway.onboard_device([])

    def test_onboarding_without_service_rejected(self):
        gateway = SecurityGateway(security_service=None)
        simulator = SetupTrafficSimulator(seed=1)
        trace = simulator.simulate(DEVICE_CATALOG["Aria"])
        with pytest.raises(EnforcementError):
            gateway.onboard_device(trace.packets)

    def test_critical_vulnerability_triggers_notification(self, gateway):
        record, _ = _onboard(gateway, "D-LinkCam", seed=815)  # severity 9.1 in the seeded DB
        assert record.device_type == "D-LinkCam"
        assert gateway.notifications
        assert "D-LinkCam" in gateway.notifications[0]

    def test_disconnect_cleans_up(self, gateway):
        record, _ = _onboard(gateway, "EdnetCam", seed=816)
        gateway.disconnect_device(record.mac)
        assert record.mac not in gateway.devices
        assert gateway.rule_cache.lookup(record.mac) is None
        assert all(rule.cookie != f"enforce-{record.mac}" for rule in gateway.switch.rules)


class TestAuthorization:
    def _record_of(self, gateway, name, seed):
        record, _ = _onboard(gateway, name, seed=seed)
        return record

    def test_restricted_device_cloud_only(self, gateway):
        record = self._record_of(gateway, "EdnetCam", 820)
        allowed_ip = record.enforcement_rule.allowed_destinations[0]
        to_cloud = make_tcp_packet(record.mac, EXTERNAL_MAC, record.ip_address, allowed_ip, dst_port=443)
        to_other = make_tcp_packet(record.mac, EXTERNAL_MAC, record.ip_address, "8.8.8.8", dst_port=80)
        assert gateway.authorize(to_cloud).allowed
        assert not gateway.authorize(to_other).allowed

    def test_trusted_device_reaches_internet(self, gateway):
        record = self._record_of(gateway, "Aria", 821)
        packet = make_tcp_packet(record.mac, EXTERNAL_MAC, record.ip_address, "93.184.216.34", dst_port=443)
        assert gateway.authorize(packet).allowed

    def test_strict_device_blocked_from_internet(self, gateway):
        record = self._record_of(gateway, "MAXGateway", 822)
        packet = make_tcp_packet(record.mac, EXTERNAL_MAC, record.ip_address, "93.184.216.34", dst_port=80)
        assert not gateway.authorize(packet).allowed

    def test_overlay_separation(self, gateway):
        trusted = self._record_of(gateway, "Aria", 823)
        untrusted = self._record_of(gateway, "EdnetCam", 824)
        trusted_to_untrusted = make_tcp_packet(
            trusted.mac, untrusted.mac, trusted.ip_address, untrusted.ip_address, dst_port=80
        )
        untrusted_to_untrusted_peer = make_tcp_packet(
            untrusted.mac, trusted.mac, untrusted.ip_address, trusted.ip_address, dst_port=80
        )
        assert not gateway.authorize(trusted_to_untrusted).allowed
        assert not gateway.authorize(untrusted_to_untrusted_peer).allowed

    def test_untrusted_devices_may_talk_to_each_other(self, gateway):
        first = self._record_of(gateway, "EdnetCam", 825)
        second = self._record_of(gateway, "MAXGateway", 826)
        packet = make_udp_packet(first.mac, second.mac, first.ip_address, second.ip_address, dst_port=5000)
        assert gateway.authorize(packet).allowed

    def test_filtering_disabled_allows_everything(self, service):
        gateway = SecurityGateway(security_service=service, filtering_enabled=False)
        record, _ = _onboard(gateway, "EdnetCam", seed=827)
        packet = make_tcp_packet(record.mac, EXTERNAL_MAC, record.ip_address, "8.8.8.8", dst_port=80)
        assert gateway.authorize(packet).allowed

    def test_counters(self, gateway):
        record = self._record_of(gateway, "MAXGateway", 828)
        allowed_before = gateway.packets_allowed
        blocked_before = gateway.packets_blocked
        gateway.authorize(make_tcp_packet(record.mac, EXTERNAL_MAC, record.ip_address, "8.8.8.8"))
        assert gateway.packets_blocked == blocked_before + 1
        assert gateway.packets_allowed == allowed_before

    def test_unidentified_local_traffic_is_counted(self, gateway):
        # Setup-phase local traffic of a not-yet-assessed device is
        # allowed *and* counted: skipping the counter undercounted
        # packets_allowed and skewed the Table VI-style accounting.
        stranger = MACAddress.from_string("02:00:00:00:00:99")
        broadcast = MACAddress.from_string("ff:ff:ff:ff:ff:ff")
        allowed_before = gateway.packets_allowed
        decision = gateway.authorize(
            make_udp_packet(stranger, broadcast, "0.0.0.0", "255.255.255.255", dst_port=67)
        )
        assert decision.allowed
        assert gateway.packets_allowed == allowed_before + 1

    def test_dhcp_reassignment_evicts_stale_ip_mapping(self, gateway):
        # A DHCP re-assignment must remove the old IP's mapping, or
        # _destination_record can resolve the dead IP to the wrong device
        # once another device claims it.
        device = MACAddress.from_string("02:00:00:00:00:42")
        first = make_udp_packet(device, EXTERNAL_MAC, "192.168.0.50", "192.168.0.1")
        second = make_udp_packet(device, EXTERNAL_MAC, "192.168.0.77", "192.168.0.1")
        gateway.observe_setup_packet(first)
        gateway.observe_setup_packet(second)
        assert gateway.ip_to_mac.get("192.168.0.77") == device
        assert "192.168.0.50" not in gateway.ip_to_mac
        assert gateway.devices[device].ip_address == "192.168.0.77"

        # The freed address can be claimed by a different device.
        newcomer = MACAddress.from_string("02:00:00:00:00:43")
        gateway.observe_setup_packet(
            make_udp_packet(newcomer, EXTERNAL_MAC, "192.168.0.50", "192.168.0.1")
        )
        assert gateway.ip_to_mac.get("192.168.0.50") == newcomer


class TestDatapath:
    def test_handle_packet_uses_flow_table_and_controller(self, gateway):
        # Install a deterministic restricted assessment directly: this test
        # exercises the switch datapath, not the identification stage.
        mac = MACAddress.from_string("02:00:00:00:0d:01")
        gateway.connect_device(mac, ip_address="192.168.0.55")
        assessment = SecurityAssessment(
            device_type="EdnetCam",
            isolation_level=IsolationLevel.RESTRICTED,
            vulnerabilities=(VulnerabilityRecord("CVE-SIM-1", "EdnetCam", "test", 5.0),),
            allowed_destinations=("52.28.10.10",),
        )
        record = gateway.apply_assessment(mac, assessment)
        decision = gateway.handle_packet(
            make_tcp_packet(record.mac, EXTERNAL_MAC, "192.168.0.55", "52.28.10.10", dst_port=443)
        )
        assert decision.forwarded
        blocked = gateway.handle_packet(
            make_tcp_packet(record.mac, EXTERNAL_MAC, "192.168.0.55", "8.8.8.8", dst_port=80)
        )
        assert blocked.dropped

    def test_processing_delay_larger_with_filtering(self, service):
        filtering = SecurityGateway(security_service=service, filtering_enabled=True)
        plain = SecurityGateway(security_service=service, filtering_enabled=False)
        assert filtering.processing_delay_ms() > plain.processing_delay_ms()

    def test_resource_sample_reflects_rule_cache(self, gateway):
        _onboard(gateway, "EdnetCam", seed=831)
        sample = gateway.resource_sample(concurrent_flows=50)
        assert sample.filtering_enabled
        assert sample.enforcement_rules == len(gateway.rule_cache)
        assert 0 < sample.cpu_percent <= 100
        assert sample.memory_mb > 0

    def test_device_record_lookup(self, gateway):
        record, _ = _onboard(gateway, "Aria", seed=832)
        assert gateway.device_record(record.mac) is record
        with pytest.raises(EnforcementError):
            gateway.device_record(MACAddress(424242))
        assert gateway.connected_device_count >= 1
        assert record in gateway.devices_in_overlay(NetworkOverlay.TRUSTED)


class TestLifecycleCoupling:
    """disconnect_device / rule eviction -> lifecycle coordinator wiring."""

    def _wired(self, gateway, service):
        from repro.identification.lifecycle import LifecycleCoordinator

        coordinator = LifecycleCoordinator(identifier=service.identifier)
        gateway.attach_lifecycle(coordinator)
        return coordinator

    def _quarantined_record(self, gateway, coordinator, seed=814):
        # MAXGateway is not in the trained bank: it onboards as unknown.
        record, trace = _onboard(gateway, "MAXGateway", seed=seed)
        from repro.features.fingerprint import Fingerprint

        coordinator.quarantine.record(
            record.mac, Fingerprint.from_packets(trace.packets), now=0.0
        )
        return record

    def test_disconnect_informs_lifecycle(self, gateway, service):
        coordinator = self._wired(gateway, service)
        record = self._quarantined_record(gateway, coordinator)
        assert record.mac in coordinator.quarantine

        gateway.disconnect_device(record.mac)
        assert record.mac not in coordinator.quarantine  # no ghost re-identification
        assert coordinator.disconnects == 1

    def test_stale_rule_eviction_counts_as_departure(self, gateway, service):
        coordinator = self._wired(gateway, service)
        record = self._quarantined_record(gateway, coordinator)
        evicted = gateway.rule_cache.evict_stale(now=1_000_000.0, max_idle_seconds=60.0)
        assert evicted >= 1
        assert record.mac not in coordinator.quarantine
        assert coordinator.disconnects >= 1

    def test_capacity_eviction_is_not_a_departure(self, service):
        # An LRU rule squeezed out of a full cache may belong to a device
        # that is still connected; it must not drop quarantine state.
        from repro.gateway.rule_cache import EnforcementRuleCache

        gateway = SecurityGateway(
            security_service=service, rule_cache=EnforcementRuleCache(max_entries=1)
        )
        coordinator = self._wired(gateway, service)
        record = self._quarantined_record(gateway, coordinator)
        _onboard(gateway, "Aria", seed=815)  # second rule: LRU evicts the first
        assert gateway.rule_cache.lookup(record.mac) is None
        assert record.mac in coordinator.quarantine  # still pending a learn
        assert coordinator.disconnects == 0

    def test_unattached_gateway_disconnect_still_works(self, gateway):
        record, _ = _onboard(gateway, "EdnetCam", seed=816)
        gateway.disconnect_device(record.mac)  # no lifecycle: no error
        assert record.mac not in gateway.devices

    def test_attach_lifecycle_chains_existing_evict_hook(self, gateway, service):
        # A metrics hook installed before attach_lifecycle keeps firing.
        observed = []
        gateway.rule_cache.on_evict = lambda mac, reason: observed.append((mac, reason))
        coordinator = self._wired(gateway, service)
        record = self._quarantined_record(gateway, coordinator)
        gateway.rule_cache.evict_stale(now=1_000_000.0, max_idle_seconds=60.0)
        assert (record.mac, "stale") in observed  # the original hook ran
        assert record.mac not in coordinator.quarantine  # and so did the wiring


class TestDhcpChurn:
    """Lease reassignment races: ip_to_mac coherence under re-join storms.

    Pins the disconnect guard (a departing device must not evict a lease
    that has already been reassigned to another MAC) and the quarantine
    dedup behaviour for rotated identities re-running setup.
    """

    MAC_A = MACAddress.from_string("06:aa:aa:aa:aa:01")
    MAC_B = MACAddress.from_string("06:bb:bb:bb:bb:02")

    def test_rejoin_with_new_lease_drops_old_mapping(self, gateway):
        gateway.note_address_claim(self.MAC_A, "10.0.0.10", now=1.0)
        gateway.note_address_claim(self.MAC_A, "10.0.0.20", now=2.0)
        assert gateway.ip_to_mac == {"10.0.0.20": self.MAC_A}
        assert gateway.devices[self.MAC_A].ip_address == "10.0.0.20"

    def test_takeover_survives_previous_holder_rejoin(self, gateway):
        # A held the lease, B took it over, then A re-joins elsewhere:
        # A's old-lease cleanup must not evict B's live mapping.
        gateway.note_address_claim(self.MAC_A, "10.0.0.10", now=1.0)
        gateway.note_address_claim(self.MAC_B, "10.0.0.10", now=2.0)
        gateway.note_address_claim(self.MAC_A, "10.0.0.30", now=3.0)
        assert gateway.ip_to_mac["10.0.0.10"] == self.MAC_B
        assert gateway.ip_to_mac["10.0.0.30"] == self.MAC_A

    def test_disconnect_does_not_evict_reassigned_lease(self, gateway):
        # The regression: disconnect used to pop the record's IP
        # unconditionally, tearing down the *new* holder's mapping.
        gateway.note_address_claim(self.MAC_A, "10.0.0.10", now=1.0)
        gateway.note_address_claim(self.MAC_B, "10.0.0.10", now=2.0)
        gateway.disconnect_device(self.MAC_A)
        assert self.MAC_A not in gateway.devices
        assert gateway.ip_to_mac["10.0.0.10"] == self.MAC_B

    def test_disconnect_drops_a_still_owned_lease(self, gateway):
        gateway.note_address_claim(self.MAC_A, "10.0.0.10", now=1.0)
        gateway.disconnect_device(self.MAC_A)
        assert "10.0.0.10" not in gateway.ip_to_mac

    def test_unspecified_address_is_ignored(self, gateway):
        # DHCP DISCOVER traffic claims 0.0.0.0; it must never enter the map.
        gateway.note_address_claim(self.MAC_A, "0.0.0.0", now=1.0)
        gateway.note_address_claim(self.MAC_A, None, now=2.0)
        assert gateway.ip_to_mac == {}
        assert gateway.devices[self.MAC_A].ip_address is None

    def test_storm_leaves_no_stale_or_dangling_entries(self, gateway):
        # A randomized churn storm; the map must stay a bijection onto
        # the connected devices' current leases throughout.
        import random

        rng = random.Random(4242)
        macs = [
            MACAddress.from_string(f"06:cc:cc:cc:cc:{index:02x}") for index in range(6)
        ]
        leases = [f"10.1.0.{index}" for index in range(4)]
        for step in range(200):
            mac = rng.choice(macs)
            if rng.random() < 0.2:
                gateway.disconnect_device(mac)
            else:
                gateway.note_address_claim(mac, rng.choice(leases), now=float(step))
        for ip, mac in gateway.ip_to_mac.items():
            assert mac in gateway.devices, f"dangling mapping {ip} -> {mac}"
            assert gateway.devices[mac].ip_address == ip
        ips = list(gateway.ip_to_mac)
        assert len(ips) == len(set(ips))

    def test_rotated_mac_rejoin_is_not_double_counted(self, service, gateway):
        from repro.features.fingerprint import Fingerprint
        from repro.identification.lifecycle import LifecycleCoordinator

        coordinator = LifecycleCoordinator(identifier=service.identifier)
        gateway.attach_lifecycle(coordinator)
        record, trace = _onboard(gateway, "MAXGateway", seed=910)
        fingerprint = Fingerprint.from_packets(trace.packets)
        # The same rotated identity re-runs setup repeatedly: the log
        # refreshes its one entry instead of growing per sighting.
        for sighting in range(3):
            coordinator.quarantine.record(record.mac, fingerprint, now=float(sighting))
        assert len(coordinator.quarantine) == 1
        assert coordinator.quarantine.recorded == 3
        assert coordinator.quarantine.evicted == 0
        gateway.disconnect_device(record.mac)
        assert len(coordinator.quarantine) == 0
        assert coordinator.quarantine.released == 1
