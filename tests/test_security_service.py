"""Tests for the IoT Security Service, vulnerability DB and isolation policy."""

import pytest

from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.simulator import SetupTrafficSimulator
from repro.features.fingerprint import Fingerprint
from repro.security_service.isolation import IsolationLevel, isolation_level_for
from repro.security_service.service import IoTSecurityService, vendor_cloud_destinations
from repro.security_service.vulnerability import (
    VulnerabilityDatabase,
    VulnerabilityRecord,
    build_default_database,
)


class TestIsolationPolicy:
    def test_unknown_is_strict(self):
        assert isolation_level_for(False, []) is IsolationLevel.STRICT
        assert isolation_level_for(False, ["anything"]) is IsolationLevel.STRICT

    def test_vulnerable_is_restricted(self):
        assert isolation_level_for(True, ["cve"]) is IsolationLevel.RESTRICTED

    def test_clean_is_trusted(self):
        assert isolation_level_for(True, []) is IsolationLevel.TRUSTED

    def test_internet_access_property(self):
        assert not IsolationLevel.STRICT.allows_internet
        assert IsolationLevel.RESTRICTED.allows_internet
        assert IsolationLevel.TRUSTED.allows_internet
        assert IsolationLevel.TRUSTED.allows_trusted_overlay
        assert not IsolationLevel.RESTRICTED.allows_trusted_overlay


class TestVulnerabilityDatabase:
    def test_default_database_seeded(self):
        database = build_default_database()
        assert len(database) >= 10
        assert database.is_vulnerable("EdnetCam")
        assert not database.is_vulnerable("Aria")

    def test_query_and_severity(self):
        database = build_default_database()
        records = database.query("D-LinkCam")
        assert records
        assert database.highest_severity("D-LinkCam") == max(r.severity for r in records)
        assert database.highest_severity("Aria") is None

    def test_add_custom_record(self):
        database = VulnerabilityDatabase()
        database.add(VulnerabilityRecord("CVE-X", "MyDevice", "bad", 5.0))
        assert database.is_vulnerable("MyDevice")
        assert database.affected_device_types == ["MyDevice"]

    def test_invalid_severity(self):
        with pytest.raises(ValueError):
            VulnerabilityRecord("CVE-X", "D", "s", 11.0)


class TestVendorCloudDestinations:
    def test_known_device_has_destinations(self, lab_environment):
        destinations = vendor_cloud_destinations("EdnetCam", lab_environment)
        assert destinations
        assert all(destination.count(".") == 3 for destination in destinations)

    def test_unknown_device_has_none(self, lab_environment):
        assert vendor_cloud_destinations("NotADevice", lab_environment) == ()

    def test_deterministic(self, lab_environment):
        assert vendor_cloud_destinations("EdimaxCam", lab_environment) == vendor_cloud_destinations(
            "EdimaxCam", lab_environment
        )


class TestIoTSecurityService:
    @pytest.fixture()
    def service(self, trained_identifier):
        return IoTSecurityService(identifier=trained_identifier)

    def _fingerprint(self, name, seed=501):
        simulator = SetupTrafficSimulator(seed=seed)
        trace = simulator.simulate(DEVICE_CATALOG[name])
        return Fingerprint.from_packets(trace.packets)

    def test_vulnerable_device_restricted(self, service):
        assessment = service.assess_fingerprint(self._fingerprint("EdnetCam"))
        assert assessment.device_type == "EdnetCam"
        assert assessment.isolation_level is IsolationLevel.RESTRICTED
        assert assessment.allowed_destinations
        assert assessment.vulnerabilities

    def test_clean_device_trusted(self, service):
        assessment = service.assess_fingerprint(self._fingerprint("Aria"))
        assert assessment.device_type == "Aria"
        assert assessment.isolation_level is IsolationLevel.TRUSTED
        assert assessment.allowed_destinations == ()

    def test_unknown_device_strict(self, service):
        # HomeMaticPlug is not part of the small training set.
        assessment = service.assess_fingerprint(self._fingerprint("HomeMaticPlug"))
        assert assessment.isolation_level is IsolationLevel.STRICT

    def test_assess_device_type_shortcut(self, service):
        known = service.assess_device_type("EdnetCam")
        unknown = service.assess_device_type("SomethingElse")
        assert known.isolation_level is IsolationLevel.RESTRICTED
        assert unknown.isolation_level is IsolationLevel.STRICT
        assert unknown.device_type == "unknown"

    def test_statelessness_counter_only(self, service):
        before = service.assessments_served
        service.assess_fingerprint(self._fingerprint("Aria"))
        service.assess_fingerprint(self._fingerprint("EdnetCam"))
        assert service.assessments_served == before + 2
