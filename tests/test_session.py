"""Tests for setup-phase detection and per-source capture splitting."""

from repro.features.session import SetupPhaseDetector, split_by_source
from repro.net.addresses import MACAddress

from tests.conftest import make_udp_packet

DEVICE_A = MACAddress.from_string("02:00:00:00:00:01")
DEVICE_B = MACAddress.from_string("02:00:00:00:00:02")
GATEWAY = MACAddress.from_string("02:00:00:00:00:99")


def _burst(source, count, start, gap=0.1):
    packets = []
    for index in range(count):
        packet = make_udp_packet(source, GATEWAY, "10.0.0.5", "10.0.0.1", dst_port=53)
        packet.timestamp = start + index * gap
        packets.append(packet)
    return packets


class TestSplitBySource:
    def test_groups_by_mac(self):
        packets = _burst(DEVICE_A, 3, 0.0) + _burst(DEVICE_B, 2, 0.05)
        groups = split_by_source(packets)
        assert len(groups[DEVICE_A]) == 3
        assert len(groups[DEVICE_B]) == 2

    def test_order_preserved(self):
        packets = _burst(DEVICE_A, 5, 0.0)
        groups = split_by_source(packets)
        timestamps = [packet.timestamp for packet in groups[DEVICE_A]]
        assert timestamps == sorted(timestamps)

    def test_empty_capture(self):
        assert split_by_source([]) == {}


class TestSetupPhaseDetector:
    def test_cuts_at_long_silence(self):
        setup = _burst(DEVICE_A, 20, 0.0, gap=0.2)
        idle_then_heartbeat = _burst(DEVICE_A, 5, 120.0, gap=30.0)
        detector = SetupPhaseDetector(min_idle_seconds=10.0, idle_factor=5.0)
        kept = detector.setup_slice(setup + idle_then_heartbeat)
        assert len(kept) == 20

    def test_keeps_everything_without_silence(self):
        packets = _burst(DEVICE_A, 30, 0.0, gap=0.3)
        detector = SetupPhaseDetector()
        assert len(detector.setup_slice(packets)) == 30

    def test_max_packets_cap(self):
        packets = _burst(DEVICE_A, 50, 0.0, gap=0.1)
        detector = SetupPhaseDetector(max_packets=25)
        assert len(detector.setup_slice(packets)) == 25

    def test_short_captures_untouched(self):
        packets = _burst(DEVICE_A, 3, 0.0)
        detector = SetupPhaseDetector()
        assert len(detector.setup_slice(packets)) == 3

    def test_empty(self):
        assert SetupPhaseDetector().setup_slice([]) == []

    def test_segment_capture_combines_split_and_cut(self):
        capture = (
            _burst(DEVICE_A, 10, 0.0, gap=0.2)
            + _burst(DEVICE_B, 8, 1.0, gap=0.2)
            + _burst(DEVICE_A, 3, 500.0, gap=60.0)
        )
        segments = SetupPhaseDetector().segment_capture(capture)
        assert len(segments[DEVICE_A]) == 10
        assert len(segments[DEVICE_B]) == 8
