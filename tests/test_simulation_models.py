"""Tests for the clock, latency, resource and workload simulation models."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation.clock import SimulatedClock
from repro.simulation.latency import LatencyModel, PathType
from repro.simulation.resources import GatewayResourceModel
from repro.simulation.workload import ConcurrentFlowWorkload


class TestSimulatedClock:
    def test_advance(self):
        clock = SimulatedClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.advance_ms(500)
        assert clock.now() == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SimulatedClock().advance(-1)


class TestLatencyModel:
    def test_wireless_paths_slower_than_wired(self):
        model = LatencyModel(seed=0)
        wireless = model.sample_many(PathType.WIRELESS_TO_WIRELESS, 50).mean()
        wired = model.sample_many(PathType.WIRED_TO_WIRED, 50).mean()
        assert wireless > wired

    def test_table_v_ranges(self):
        model = LatencyModel(seed=1)
        device_pair = model.sample_many(PathType.WIRELESS_TO_WIRELESS, 100).mean()
        local_server = model.sample_many(PathType.WIRELESS_TO_LOCAL_SERVER, 100).mean()
        remote_server = model.sample_many(PathType.WIRELESS_TO_REMOTE_SERVER, 100).mean()
        assert 20 < device_pair < 32
        assert 13 < local_server < 22
        assert 15 < remote_server < 26

    def test_gateway_processing_charged_twice(self):
        model_a = LatencyModel(seed=2)
        model_b = LatencyModel(seed=2)
        base = model_a.sample_many(PathType.WIRELESS_TO_WIRELESS, 200, gateway_processing_ms=0.0)
        loaded = model_b.sample_many(PathType.WIRELESS_TO_WIRELESS, 200, gateway_processing_ms=2.0)
        assert loaded.mean() - base.mean() == pytest.approx(4.0, abs=0.5)

    def test_concurrent_flow_load_increases_latency(self):
        model_a = LatencyModel(seed=3)
        model_b = LatencyModel(seed=3)
        quiet = model_a.sample_many(PathType.WIRELESS_TO_WIRELESS, 200, concurrent_flows=0).mean()
        busy = model_b.sample_many(PathType.WIRELESS_TO_WIRELESS, 200, concurrent_flows=150).mean()
        assert busy > quiet
        assert busy - quiet < 5.0  # the paper: increase is insignificant

    def test_device_offsets(self):
        model = LatencyModel(seed=4, device_offsets_ms={"D2": 3.0})
        base = LatencyModel(seed=4).sample_many(PathType.WIRELESS_TO_WIRELESS, 100).mean()
        offset = model.sample_many(PathType.WIRELESS_TO_WIRELESS, 100, source_device="D2").mean()
        assert offset == pytest.approx(base + 3.0, abs=0.1)

    def test_invalid_arguments(self):
        model = LatencyModel(seed=0)
        with pytest.raises(SimulationError):
            model.sample(PathType.WIRELESS_TO_WIRELESS, concurrent_flows=-1)
        with pytest.raises(SimulationError):
            model.sample_many(PathType.WIRELESS_TO_WIRELESS, 0)

    def test_latencies_positive(self):
        model = LatencyModel(seed=5)
        samples = model.sample_many(PathType.WIRED_TO_WIRED, 200)
        assert np.all(samples > 0)


class TestGatewayResourceModel:
    def test_cpu_grows_with_flows(self):
        model = GatewayResourceModel(seed=0, measurement_noise=0.0)
        idle = model.cpu_utilization(0, filtering_enabled=False)
        busy = model.cpu_utilization(150, filtering_enabled=False)
        assert busy > idle
        assert 30 < idle < 45
        assert busy < 60

    def test_filtering_cpu_overhead_is_small(self):
        model = GatewayResourceModel(seed=0, measurement_noise=0.0)
        with_filtering = model.cpu_utilization(100, filtering_enabled=True)
        without_filtering = model.cpu_utilization(100, filtering_enabled=False)
        overhead = 100.0 * (with_filtering - without_filtering) / without_filtering
        assert 0 < overhead < 5.0

    def test_memory_grows_with_rules_only_when_filtering(self):
        model = GatewayResourceModel(seed=0, measurement_noise=0.0)
        empty = model.memory_usage_mb(0, filtering_enabled=True)
        full = model.memory_usage_mb(20000, filtering_enabled=True)
        plain = model.memory_usage_mb(20000, filtering_enabled=False)
        assert full > empty
        assert 30 < full < 120  # Fig. 6c range
        assert plain == pytest.approx(model.memory_usage_mb(0, filtering_enabled=False), rel=0.01)

    def test_cpu_capped_at_100(self):
        model = GatewayResourceModel(seed=0, cpu_per_flow_percent=10.0, measurement_noise=0.0)
        assert model.cpu_utilization(1000, filtering_enabled=True) == 100.0

    def test_invalid_arguments(self):
        model = GatewayResourceModel(seed=0)
        with pytest.raises(SimulationError):
            model.cpu_utilization(-1, True)
        with pytest.raises(SimulationError):
            model.memory_usage_mb(-5, True)

    def test_sample_bundle(self):
        sample = GatewayResourceModel(seed=0).sample(50, 100, True)
        assert sample.concurrent_flows == 50
        assert sample.enforcement_rules == 100
        assert sample.filtering_enabled


class TestConcurrentFlowWorkload:
    def test_flow_count(self):
        workload = ConcurrentFlowWorkload(seed=0)
        assert len(workload.generate(75)) == 75
        assert workload.generate(0) == []

    def test_flows_have_valid_endpoints(self):
        workload = ConcurrentFlowWorkload(device_count=5, seed=1)
        for flow in workload.generate(40):
            assert flow.key.src_ip.startswith(workload.subnet_prefix)
            assert flow.key.protocol in ("tcp", "udp")
            assert flow.source_mac == workload.device_mac(
                int(flow.key.src_ip.rsplit(".", 1)[1]) - 10
            )

    def test_local_ratio_extremes(self):
        local_only = ConcurrentFlowWorkload(device_count=6, local_ratio=1.0, seed=2)
        remote_only = ConcurrentFlowWorkload(device_count=6, local_ratio=0.0, seed=2)
        assert all(flow.key.dst_ip.startswith("192.168.0.") for flow in local_only.generate(30))
        assert all(not flow.key.dst_ip.startswith("192.168.0.") for flow in remote_only.generate(30))

    def test_no_self_flows_in_local_traffic(self):
        workload = ConcurrentFlowWorkload(device_count=3, local_ratio=1.0, seed=3)
        for flow in workload.generate(60):
            assert flow.key.src_ip != flow.key.dst_ip

    def test_invalid_configuration(self):
        with pytest.raises(SimulationError):
            ConcurrentFlowWorkload(device_count=1)
        with pytest.raises(SimulationError):
            ConcurrentFlowWorkload(local_ratio=1.5)
        with pytest.raises(SimulationError):
            ConcurrentFlowWorkload(seed=0).generate(-1)
