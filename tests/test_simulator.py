"""Tests for the setup-traffic simulator."""

import pytest

from repro.devices.catalog import DEVICE_CATALOG
from repro.devices.profiles import DeviceProfile, SetupStep, StepKind
from repro.devices.simulator import LabEnvironment, SetupTrafficSimulator
from repro.exceptions import SimulationError
from repro.features.packet_features import PacketFeatureExtractor, FEATURE_INDEX
from repro.net.packet import Packet


class TestLabEnvironment:
    def test_ip_allocation_is_unique(self, lab_environment):
        first = lab_environment.allocate_ip()
        second = lab_environment.allocate_ip()
        assert first != second
        assert first.startswith(lab_environment.subnet_prefix)

    def test_pool_wraps_around_when_exhausted(self):
        environment = LabEnvironment()
        first = environment.allocate_ip()
        for _ in range(239):
            environment.allocate_ip()
        recycled = environment.allocate_ip()
        assert recycled == first
        assert int(recycled.rsplit(".", 1)[1]) >= 10

    def test_resolution_is_deterministic(self, lab_environment):
        assert lab_environment.resolve("api.fitbit.com") == lab_environment.resolve("api.fitbit.com")
        assert lab_environment.resolve("api.fitbit.com") != lab_environment.resolve("ws.meethue.com")

    def test_resolution_is_case_insensitive(self, lab_environment):
        assert lab_environment.resolve("Cloud.Example.COM") == lab_environment.resolve("cloud.example.com")

    def test_dns_server_defaults_to_gateway(self):
        environment = LabEnvironment(gateway_ip="10.1.1.1")
        assert environment.dns_server == "10.1.1.1"


class TestSimulation:
    def test_trace_has_packets_from_single_mac(self, simulator):
        trace = simulator.simulate(DEVICE_CATALOG["WeMoSwitch"])
        assert len(trace) > 10
        assert {packet.src_mac for packet in trace.packets} == {trace.device_mac}

    def test_timestamps_are_monotonic(self, simulator):
        trace = simulator.simulate(DEVICE_CATALOG["HueBridge"])
        timestamps = [packet.timestamp for packet in trace.packets]
        assert timestamps == sorted(timestamps)

    def test_device_mac_uses_vendor_oui(self, simulator):
        profile = DEVICE_CATALOG["HueBridge"]
        trace = simulator.simulate(profile)
        assert str(trace.device_mac).startswith(profile.mac_oui)

    def test_reproducible_with_same_seed(self):
        first = SetupTrafficSimulator(seed=5).simulate(DEVICE_CATALOG["Aria"])
        second = SetupTrafficSimulator(seed=5).simulate(DEVICE_CATALOG["Aria"])
        assert len(first) == len(second)
        assert [packet.size for packet in first.packets] == [packet.size for packet in second.packets]

    def test_different_seeds_vary(self):
        first = SetupTrafficSimulator(seed=1).simulate(DEVICE_CATALOG["Aria"])
        second = SetupTrafficSimulator(seed=2).simulate(DEVICE_CATALOG["Aria"])
        assert [packet.size for packet in first.packets] != [packet.size for packet in second.packets]

    def test_simulate_many(self, simulator):
        traces = simulator.simulate_many(DEVICE_CATALOG["Aria"], 5)
        assert len(traces) == 5
        assert len({str(trace.device_mac) for trace in traces}) == 5

    def test_simulate_many_rejects_zero_runs(self, simulator):
        with pytest.raises(SimulationError):
            simulator.simulate_many(DEVICE_CATALOG["Aria"], 0)

    def test_packets_serialise_and_dissect(self, simulator):
        """Every simulated packet must survive a bytes round-trip."""
        trace = simulator.simulate(DEVICE_CATALOG["D-LinkCam"])
        for packet in trace.packets:
            parsed = Packet.dissect(packet.to_bytes())
            assert parsed.src_mac == packet.src_mac

    def test_unknown_step_kind_rejected(self, simulator):
        profile = DEVICE_CATALOG["Aria"]
        bad_profile = DeviceProfile(
            name="Bad",
            vendor="X",
            model="Y",
            steps=(SetupStep(StepKind.DNS_QUERY, target="x.example"),),
        )
        # Sanity: valid profile simulates fine; then corrupt the renderer input.
        simulator.simulate(profile)
        trace = simulator.simulate(bad_profile)
        assert len(trace) >= 1


class TestProtocolContent:
    def _features_of(self, simulator, name):
        trace = simulator.simulate(DEVICE_CATALOG[name])
        extractor = PacketFeatureExtractor()
        return extractor.extract_all(trace.packets)

    def test_wifi_device_emits_eapol_and_dhcp(self, simulator):
        matrix = self._features_of(simulator, "WeMoSwitch")
        assert matrix[:, FEATURE_INDEX["eapol"]].sum() >= 1
        assert matrix[:, FEATURE_INDEX["dhcp"]].sum() >= 1
        assert matrix[:, FEATURE_INDEX["arp"]].sum() >= 1

    def test_upnp_device_emits_ssdp_and_router_alert(self, simulator):
        matrix = self._features_of(simulator, "WeMoSwitch")
        assert matrix[:, FEATURE_INDEX["ssdp"]].sum() >= 1
        assert matrix[:, FEATURE_INDEX["ip_option_router_alert"]].sum() >= 1

    def test_cloud_device_emits_dns_and_https(self, simulator):
        matrix = self._features_of(simulator, "Aria")
        assert matrix[:, FEATURE_INDEX["dns"]].sum() >= 1
        assert matrix[:, FEATURE_INDEX["https"]].sum() >= 1
        assert matrix[:, FEATURE_INDEX["ntp"]].sum() >= 1

    def test_destination_counter_grows(self, simulator):
        matrix = self._features_of(simulator, "HueBridge")
        assert matrix[:, FEATURE_INDEX["dst_ip_counter"]].max() >= 3
