"""Tests for the streaming identification pipeline."""

from __future__ import annotations

import pytest

from repro.devices.catalog import DEVICE_CATALOG
from repro.exceptions import SimulationError
from repro.features.fingerprint import Fingerprint
from repro.gateway.security_gateway import SecurityGateway
from repro.net.addresses import MACAddress
from repro.net.pcap import write_pcap
from repro.security_service.isolation import IsolationLevel
from repro.security_service.service import IoTSecurityService
from repro.streaming import (
    BackpressurePolicy,
    BatchDispatcher,
    BoundedQueue,
    GatewayEnforcementSink,
    IdentificationCache,
    IdentifiedDevice,
    IterableSource,
    Offer,
    PacketSource,
    PcapReplaySource,
    ReadyFingerprint,
    ShardedFingerprintAssembler,
    SimulatedSource,
    StreamingPipeline,
    fingerprint_cache_key,
    interleave_traces,
    replay_trace,
)
from tests.conftest import make_device_mac, make_udp_packet

GATEWAY_MAC = MACAddress.from_string("b0:c5:54:10:20:30")


def make_stream_packet(
    mac: MACAddress, timestamp: float, dst_port: int = 53, payload: bytes = b""
):
    packet = make_udp_packet(
        mac, GATEWAY_MAC, "192.168.0.50", "192.168.0.1", dst_port=dst_port, payload=payload
    )
    packet.timestamp = timestamp
    return packet


# --------------------------------------------------------------------- #
# Assembler: shard routing, budget emission, idle eviction.
# --------------------------------------------------------------------- #
class TestShardedAssembler:
    def test_shard_routing_is_stable_and_in_range(self):
        assembler = ShardedFingerprintAssembler(shards=4)
        for index in range(64):
            mac = make_device_mac(index)
            shard = assembler.shard_of(mac)
            assert 0 <= shard < 4
            assert shard == assembler.shard_of(mac)

    def test_devices_land_in_their_shard_bucket(self):
        assembler = ShardedFingerprintAssembler(shards=4, packet_budget=100)
        macs = [make_device_mac(index) for index in range(16)]
        for index, mac in enumerate(macs):
            assembler.observe(make_stream_packet(mac, timestamp=0.1 * index))
        assert assembler.active_devices == len(macs)
        sizes = assembler.shard_sizes()
        assert sum(sizes) == len(macs)
        # 16 sequential MACs spread over 4 buckets must use more than one.
        assert sum(1 for size in sizes if size) > 1
        for mac in macs:
            assert assembler.is_assembling(mac)
            assert mac in list(assembler)

    def test_budget_reached_emits_fingerprint(self):
        assembler = ShardedFingerprintAssembler(shards=2, packet_budget=5)
        mac = make_device_mac(1)
        ready = None
        for index in range(5):
            # Alternate ports so consecutive rows differ and are all kept.
            ready = assembler.observe(make_stream_packet(mac, 0.01 * index, dst_port=53 + index % 2))
        assert ready is not None
        assert ready.reason == "budget"
        assert ready.mac == mac
        assert ready.fingerprint.packet_count > 0
        assert not assembler.is_assembling(mac)
        assert assembler.stats.budget_emissions == 1

    def test_idle_eviction_emits_and_short_captures_are_dropped(self):
        assembler = ShardedFingerprintAssembler(
            shards=2, packet_budget=100, min_rows=4, idle_timeout=10.0
        )
        chatty, quiet = make_device_mac(1), make_device_mac(2)
        for index in range(6):
            # Payload growth past the 60-byte Ethernet minimum frame, so
            # every packet gets a distinct size and fingerprint row.
            assembler.observe(
                make_stream_packet(chatty, 0.1 * index, payload=b"x" * (index * 30))
            )
        assembler.observe(make_stream_packet(quiet, 0.0))  # below min_rows

        assert assembler.evict_idle(now=5.0) == []  # nobody idle yet
        ready = assembler.evict_idle(now=60.0)
        assert [item.mac for item in ready] == [chatty]
        assert ready[0].reason == "idle"
        assert assembler.stats.min_signal_drops == 1  # the quiet device
        assert assembler.active_devices == 0

    def test_per_shard_eviction_only_sweeps_one_bucket(self):
        assembler = ShardedFingerprintAssembler(shards=4, packet_budget=100, min_packets=1)
        macs = [make_device_mac(index) for index in range(8)]
        for mac in macs:
            assembler.observe(make_stream_packet(mac, 0.0))
        swept = assembler.evict_idle(now=100.0, shard=0)
        expected = [mac for mac in macs if assembler.shard_of(mac) == 0]
        assert sorted(str(item.mac) for item in swept) == sorted(str(mac) for mac in expected)
        assert assembler.active_devices == len(macs) - len(expected)

    def test_budget_capture_without_signal_is_dropped_too(self):
        # 250 identical beacons reach the budget but collapse to one row:
        # the min-signal guard applies regardless of how the capture ended.
        assembler = ShardedFingerprintAssembler(shards=1, packet_budget=6, min_rows=4)
        beacon = make_device_mac(6)
        ready = None
        for index in range(6):
            ready = assembler.observe(make_stream_packet(beacon, 0.1 * index))
        assert ready is None
        assert assembler.stats.min_signal_drops == 1
        assert assembler.stats.fingerprints_emitted == 0

    def test_adaptive_rate_drop_cuts_before_fixed_timeout(self):
        # The paper's end-of-setup criterion: a 12 s gap after dense setup
        # traffic (median gap 0.1 s) ends the capture even though the fixed
        # eviction timeout (15 s) has not elapsed -- matching what
        # SetupPhaseDetector would do offline.
        assembler = ShardedFingerprintAssembler(
            shards=1, packet_budget=100, min_packets=2, idle_timeout=15.0
        )
        mac = make_device_mac(4)
        for index in range(8):
            assembler.observe(
                make_stream_packet(mac, 0.1 * index, payload=b"x" * (index * 30))
            )
        ready = assembler.observe(make_stream_packet(mac, 0.7 + 12.0))
        assert ready is not None and ready.reason == "idle"
        assert ready.fingerprint.packet_count == 8

    def test_early_setup_pause_does_not_truncate_capture(self):
        # Offline, SetupPhaseDetector never cuts before min_packets; the
        # online rule must match: a DHCP-retry-style 12 s pause after two
        # packets stays inside one capture instead of shearing off the
        # leading packets.
        assembler = ShardedFingerprintAssembler(
            shards=1, packet_budget=100, min_packets=4, idle_timeout=30.0
        )
        mac = make_device_mac(8)
        assembler.observe(make_stream_packet(mac, 0.0, payload=b"x" * 30))
        assembler.observe(make_stream_packet(mac, 0.1, payload=b"x" * 60))
        assert assembler.observe(make_stream_packet(mac, 12.1, payload=b"x" * 90)) is None
        for index in range(3):
            assembler.observe(
                make_stream_packet(mac, 12.2 + 0.1 * index, payload=b"x" * (120 + 30 * index))
            )
        ready = assembler.evict_idle(now=100.0)
        assert len(ready) == 1
        assert ready[0].fingerprint.packet_count == 6  # pause did not split it
        assert assembler.stats.min_signal_drops == 0

    def test_repetitive_beacons_collapse_below_min_signal(self):
        # Ten identical packets dedupe to one fingerprint row: too little
        # signal to classify, so idle eviction drops the capture instead of
        # dispatching a near-empty fingerprint.
        assembler = ShardedFingerprintAssembler(
            shards=1, packet_budget=100, min_rows=4, idle_timeout=10.0
        )
        beacon = make_device_mac(5)
        for index in range(10):
            assembler.observe(make_stream_packet(beacon, 0.5 * index))
        assert assembler.evict_idle(now=60.0) == []
        assert assembler.stats.min_signal_drops == 1
        assert assembler.stats.fingerprints_emitted == 0

    def test_idle_gap_within_stream_restarts_capture(self):
        assembler = ShardedFingerprintAssembler(
            shards=1, packet_budget=100, min_packets=1, idle_timeout=10.0
        )
        mac = make_device_mac(3)
        for index in range(5):
            assert assembler.observe(make_stream_packet(mac, 0.1 * index)) is None
        # The device reconnects after a long silence: the old capture is
        # completed and a fresh one starts with the new packet.
        ready = assembler.observe(make_stream_packet(mac, 100.0))
        assert ready is not None and ready.reason == "idle"
        assert assembler.is_assembling(mac)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SimulationError):
            ShardedFingerprintAssembler(shards=0)
        with pytest.raises(SimulationError):
            ShardedFingerprintAssembler(packet_budget=0)


# --------------------------------------------------------------------- #
# Backpressure: drop vs block.
# --------------------------------------------------------------------- #
class TestBackpressure:
    def test_drop_policy_rejects_when_full(self):
        queue = BoundedQueue(capacity=2, policy=BackpressurePolicy.DROP)
        assert queue.offer("a") is Offer.ACCEPTED
        assert queue.offer("b") is Offer.ACCEPTED
        assert queue.offer("c") is Offer.DROPPED
        assert queue.stats.dropped == 1
        assert queue.pop_batch() == ["a", "b"]

    def test_block_policy_demands_drain(self):
        queue = BoundedQueue(capacity=1, policy=BackpressurePolicy.BLOCK)
        assert queue.offer("a") is Offer.ACCEPTED
        assert queue.offer("b") is Offer.MUST_DRAIN
        assert queue.stats.blocked == 1
        assert queue.pop_batch(1) == ["a"]
        assert queue.offer("b") is Offer.ACCEPTED

    def test_high_watermark_tracks_peak_depth(self):
        queue = BoundedQueue(capacity=8)
        for item in range(5):
            queue.offer(item)
        queue.pop_batch(4)
        queue.offer(99)
        assert queue.stats.high_watermark == 5


# --------------------------------------------------------------------- #
# Dispatcher: batching and the LRU result cache.
# --------------------------------------------------------------------- #
def ready_from_trace(trace, mac=None) -> ReadyFingerprint:
    fingerprint = Fingerprint.from_packets(trace.packets)
    return ReadyFingerprint(mac=mac or trace.device_mac, fingerprint=fingerprint, reason="budget")


class TestBatchDispatcher:
    def test_batches_group_classifier_invocations(self, trained_identifier, simulator):
        dispatcher = BatchDispatcher(trained_identifier, max_batch=3, queue_capacity=16)
        traces = [simulator.simulate(DEVICE_CATALOG["Aria"]) for _ in range(5)]
        results = []
        for trace in traces:
            results.extend(dispatcher.submit(ready_from_trace(trace)))
        assert len(results) == 3  # one full batch ran, two still queued
        assert dispatcher.stats.batches == 1
        results.extend(dispatcher.drain())
        assert len(results) == 5
        assert dispatcher.stats.batches == 2
        assert dispatcher.stats.largest_batch == 3
        assert all(item.result.device_type == "Aria" for item in results)

    def test_cache_hit_skips_classification(self, trained_identifier, simulator):
        cache = IdentificationCache(capacity=8)
        dispatcher = BatchDispatcher(trained_identifier, max_batch=1, cache=cache)
        trace = simulator.simulate(DEVICE_CATALOG["HueBridge"])
        clone = replay_trace(trace, make_device_mac(9), time_offset=500.0)

        first = dispatcher.submit(ready_from_trace(trace))
        assert len(first) == 1 and not first[0].from_cache
        batches_before = dispatcher.stats.batches

        second = dispatcher.submit(ready_from_trace(clone))
        assert len(second) == 1 and second[0].from_cache
        assert second[0].mac == make_device_mac(9)
        assert second[0].result.device_type == first[0].result.device_type
        assert dispatcher.stats.batches == batches_before  # no classifier run
        assert cache.hits == 1 and cache.misses == 1
        assert dispatcher.cache_hit_rate == pytest.approx(0.5)

    def test_identical_fingerprints_in_one_batch_classified_once(
        self, trained_identifier, simulator
    ):
        # A simultaneous burst of clones lands in one batch before anything
        # is cached; the batch must classify the distinct fingerprint once
        # and share the result.
        calls = []

        class _CountingIdentifier:
            def identify_many(self, fingerprints, use_discrimination=True):
                calls.append(len(fingerprints))
                return trained_identifier.identify_many(
                    fingerprints, use_discrimination=use_discrimination
                )

        dispatcher = BatchDispatcher(
            _CountingIdentifier(), max_batch=4, cache=IdentificationCache()
        )
        trace = simulator.simulate(DEVICE_CATALOG["Aria"])
        results = []
        for index in range(4):
            results.extend(
                dispatcher.submit(ready_from_trace(trace, mac=make_device_mac(index + 20)))
            )
        assert len(results) == 4
        assert calls == [1]  # four identical fingerprints, one classification
        assert len({item.result.device_type for item in results}) == 1
        assert sorted(str(item.mac) for item in results) == sorted(
            str(make_device_mac(index + 20)) for index in range(4)
        )

    def test_cache_key_ignores_mac_but_not_content(self, simulator):
        trace = simulator.simulate(DEVICE_CATALOG["Aria"])
        other = simulator.simulate(DEVICE_CATALOG["EdnetCam"])
        clone = replay_trace(trace, make_device_mac(7), time_offset=100.0)
        key = fingerprint_cache_key(Fingerprint.from_packets(trace.packets))
        assert key == fingerprint_cache_key(Fingerprint.from_packets(clone.packets))
        assert key != fingerprint_cache_key(Fingerprint.from_packets(other.packets))

    def test_cache_key_distinguishes_dtype(self):
        # Equal-byte matrices of different dtypes (all-zero int64 vs
        # float64, same shape) must not collide onto one cached verdict;
        # the key hashes the dtype alongside shape and bytes.
        import numpy as np
        from types import SimpleNamespace

        as_int = SimpleNamespace(vectors=np.zeros((3, 23), dtype=np.int64))
        as_float = SimpleNamespace(vectors=np.zeros((3, 23), dtype=np.float64))
        assert as_int.vectors.tobytes() == as_float.vectors.tobytes()
        assert fingerprint_cache_key(as_int) != fingerprint_cache_key(as_float)

    def test_unknown_verdicts_are_not_cached(self, simulator):
        # If an unknown model's verdict were cached, registering the type
        # later (add_device_type) could never reach those devices again.
        from repro.identification.identifier import IdentificationResult, UNKNOWN_DEVICE_TYPE

        class _StubIdentifier:
            def __init__(self, device_type):
                self.device_type = device_type

            def identify_many(self, fingerprints, use_discrimination=True):
                return [
                    IdentificationResult(device_type=self.device_type, matched_types=())
                    for _ in fingerprints
                ]

        cache = IdentificationCache()
        identifier = _StubIdentifier(UNKNOWN_DEVICE_TYPE)
        dispatcher = BatchDispatcher(identifier, max_batch=1, cache=cache)
        trace = simulator.simulate(DEVICE_CATALOG["Aria"])

        first = dispatcher.submit(ready_from_trace(trace))
        assert first[0].result.is_new_device_type
        assert len(cache) == 0  # unknown never enters the cache

        # The "operator registered the type" moment: the same device model
        # now gets the fresh verdict instead of a stale cached unknown.
        identifier.device_type = "Aria"
        second = dispatcher.submit(ready_from_trace(trace))
        assert second[0].result.device_type == "Aria"
        assert not second[0].from_cache
        assert len(cache) == 1  # the known verdict is cached

        third = dispatcher.submit(ready_from_trace(trace))
        assert third[0].from_cache and third[0].result.device_type == "Aria"

        cache.clear()
        assert len(cache) == 0

    def test_cached_verdict_equals_recomputed_verdict(
        self, trained_identifier, simulator
    ):
        # The deterministic reference draw makes this *provable*, not just
        # likely: for an unchanged identifier revision, a cache hit equals
        # what re-identifying the same fingerprint returns bit-for-bit --
        # device type, matched types, scores and reference provenance.
        cache = IdentificationCache()
        dispatcher = BatchDispatcher(trained_identifier, max_batch=1, cache=cache)
        verified_hits = 0
        for profile in ("Aria", "EdnetCam", "SmarterCoffee", "iKettle2"):
            trace = simulator.simulate(DEVICE_CATALOG[profile])
            first = dispatcher.submit(ready_from_trace(trace))
            assert len(first) == 1
            clone = replay_trace(trace, make_device_mac(97), time_offset=50.0)
            second = dispatcher.submit(ready_from_trace(clone, mac=make_device_mac(97)))
            if not second or not second[0].from_cache:
                continue  # unknown verdicts are never cached
            cached = second[0].result
            recomputed = trained_identifier.identify(second[0].fingerprint)
            assert cached.device_type == recomputed.device_type
            assert cached.matched_types == recomputed.matched_types
            assert cached.discrimination_scores == recomputed.discrimination_scores
            verified_hits += 1
        assert verified_hits > 0  # the equality claim was actually exercised

    def test_drain_serves_results_cached_while_queued(self, trained_identifier, simulator):
        # A fingerprint queued as a miss whose model gets cached before its
        # batch runs is served from the cache instead of re-classified.
        cache = IdentificationCache()
        dispatcher = BatchDispatcher(trained_identifier, max_batch=8, cache=cache)
        trace = simulator.simulate(DEVICE_CATALOG["Aria"])
        ready = ready_from_trace(trace)
        assert dispatcher.submit(ready) == []  # queued as a miss
        result = trained_identifier.identify(ready.fingerprint)
        cache.put(fingerprint_cache_key(ready.fingerprint), result)

        drained = dispatcher.drain()
        assert len(drained) == 1 and drained[0].from_cache
        assert drained[0].result.device_type == result.device_type
        assert dispatcher.stats.batches == 0  # the classifier bank never ran

    def test_cache_evicts_least_recently_used(self):
        cache = IdentificationCache(capacity=2)
        cache.put(b"a", "ra")
        cache.put(b"b", "rb")
        assert cache.get(b"a") == "ra"  # refresh a
        cache.put(b"c", "rc")  # evicts b
        assert cache.get(b"b") is None
        assert cache.get(b"a") == "ra"
        assert len(cache) == 2

    def test_drop_policy_sheds_load(self, trained_identifier, simulator):
        dispatcher = BatchDispatcher(
            trained_identifier,
            max_batch=10,
            queue_capacity=2,
            policy=BackpressurePolicy.DROP,
        )
        traces = [simulator.simulate(DEVICE_CATALOG["Aria"]) for _ in range(4)]
        for trace in traces:
            dispatcher.submit(ready_from_trace(trace))
        assert dispatcher.stats.dropped == 2
        assert len(dispatcher.drain()) == 2  # only the queued ones

    def test_poll_flushes_lingering_partial_batch(self, trained_identifier, simulator):
        dispatcher = BatchDispatcher(trained_identifier, max_batch=16, max_linger=5.0)
        trace = simulator.simulate(DEVICE_CATALOG["Aria"])
        fingerprint = Fingerprint.from_packets(trace.packets)
        dispatcher.submit(
            ReadyFingerprint(
                mac=trace.device_mac, fingerprint=fingerprint, reason="idle", completed_at=10.0
            )
        )
        assert dispatcher.poll(now=12.0) == []  # still within the linger window
        flushed = dispatcher.poll(now=16.0)
        assert len(flushed) == 1
        assert dispatcher.stats.linger_flushes == 1

    def test_drop_queue_smaller_than_batch_does_not_starve(self, trained_identifier, simulator):
        # Regression: with max_batch > queue_capacity under DROP, a batch
        # threshold was never reached, so nothing was identified mid-stream
        # and everything past capacity was shed.  The pipeline's
        # clock-driven poll() must keep such a configuration flowing.
        source = SimulatedSource(
            device_names=["Aria", "HueBridge", "EdnetCam"],
            devices=8,
            arrival_gap=8.0,
            simulator=simulator,
        )
        pipeline = StreamingPipeline(
            source=source,
            dispatcher=BatchDispatcher(
                trained_identifier,
                max_batch=32,
                queue_capacity=4,
                policy=BackpressurePolicy.DROP,
                max_linger=5.0,
            ),
        )
        stats = pipeline.run()
        assert stats.identified == 8
        assert stats.dropped == 0
        assert stats.dispatcher.linger_flushes >= 1

    def test_block_policy_drains_instead_of_dropping(self, trained_identifier, simulator):
        dispatcher = BatchDispatcher(
            trained_identifier,
            max_batch=10,
            queue_capacity=2,
            policy=BackpressurePolicy.BLOCK,
        )
        traces = [simulator.simulate(DEVICE_CATALOG["Aria"]) for _ in range(4)]
        results = []
        for trace in traces:
            results.extend(dispatcher.submit(ready_from_trace(trace)))
        results.extend(dispatcher.drain())
        assert dispatcher.stats.dropped == 0
        assert dispatcher.queue.stats.blocked >= 1
        assert len(results) == 4  # nothing lost


# --------------------------------------------------------------------- #
# Sources and the full pipeline.
# --------------------------------------------------------------------- #
class TestSourcesAndPipeline:
    def test_sources_satisfy_the_protocol(self, tmp_path, aria_trace):
        path = tmp_path / "capture.pcap"
        write_pcap(path, aria_trace.packets)
        for source in (
            IterableSource(aria_trace.packets),
            PcapReplaySource(path),
            SimulatedSource(traces=[aria_trace]),
        ):
            assert isinstance(source, PacketSource)
            assert len(list(source.packets())) == len(aria_trace.packets)

    def test_simulated_source_interleaves_by_timestamp(self, simulator):
        traces = [
            simulator.simulate(DEVICE_CATALOG["Aria"], start_time=0.0),
            simulator.simulate(DEVICE_CATALOG["WeMoSwitch"], start_time=0.5),
        ]
        stream = list(SimulatedSource(traces=traces).packets())
        timestamps = [packet.timestamp for packet in stream]
        assert timestamps == sorted(timestamps)
        assert {packet.src_mac for packet in stream} == {trace.device_mac for trace in traces}

    def test_interleave_handles_simultaneous_identical_timestamps(self, simulator):
        # Two devices joining at the same instant produce timestamp ties;
        # the merge must stay deterministic (by trace position) and never
        # fall through to comparing Packet objects.
        trace = simulator.simulate(DEVICE_CATALOG["Aria"], start_time=0.0)
        twin = replay_trace(trace, make_device_mac(13), time_offset=0.0)
        stream = list(interleave_traces([trace, twin]))
        assert len(stream) == 2 * len(trace.packets)
        for first, second in zip(stream[0::2], stream[1::2]):
            assert first.timestamp == second.timestamp
            assert first.src_mac == trace.device_mac  # trace order breaks the tie
            assert second.src_mac == twin.device_mac

    def test_explicitly_empty_device_names_rejected(self):
        # A filtered name list that came back empty must error, not fall
        # back to simulating the whole catalog.
        with pytest.raises(SimulationError):
            SimulatedSource(device_names=[], devices=3)

    def test_pipeline_identifies_simulated_fleet(self, trained_identifier, simulator):
        source = SimulatedSource(
            device_names=["Aria", "HueBridge", "EdnetCam"],
            devices=6,
            arrival_gap=2.0,
            simulator=simulator,
        )
        pipeline = StreamingPipeline(
            source=source,
            dispatcher=BatchDispatcher(trained_identifier, max_batch=4),
            assembler=ShardedFingerprintAssembler(shards=4),
        )
        verdicts = {}
        pipeline.on_identified = lambda item: verdicts.setdefault(item.mac, item)
        stats = pipeline.run()
        assert stats.packets == len(source)
        assert set(verdicts) == set(source.device_macs)
        expected = {trace.device_mac: trace.device_type for trace in source.traces}
        correct = sum(
            1 for mac, item in verdicts.items() if item.result.device_type == expected[mac]
        )
        assert correct >= len(expected) - 1  # allow one confusable miss
        assert stats.identified == len(expected)
        assert stats.wall_seconds > 0

    def test_pcap_replay_to_gateway_enforcement(
        self, tmp_path, trained_identifier, simulator
    ):
        # End to end: capture on disk -> streaming replay -> identification
        # -> enforcement rule installed on the Security Gateway.
        trace = simulator.simulate(DEVICE_CATALOG["EdnetCam"])
        path = tmp_path / "setup.pcap"
        write_pcap(path, trace.packets)

        gateway = SecurityGateway()
        sink = GatewayEnforcementSink(
            gateway=gateway,
            security_service=IoTSecurityService(identifier=trained_identifier),
        )
        pipeline = StreamingPipeline(
            source=PcapReplaySource(path),
            dispatcher=BatchDispatcher(trained_identifier, max_batch=4),
            on_identified=sink,
        )
        stats = pipeline.run()

        assert sink.enforced == 1
        record = gateway.device_record(trace.device_mac)
        assert record.device_type == "EdnetCam"
        assert record.isolation_level is IsolationLevel.RESTRICTED
        assert record.enforcement_rule is not None
        assert stats.fingerprints == 1

        # The installed rule actually filters: the camera may reach its
        # vendor cloud but not an arbitrary Internet host.
        permitted = record.enforcement_rule.allowed_destinations
        assert permitted  # the profile contacts its vendor cloud
        allowed = gateway.authorize(
            make_udp_packet(trace.device_mac, GATEWAY_MAC, trace.device_ip, permitted[0])
        )
        blocked = gateway.authorize(
            make_udp_packet(trace.device_mac, GATEWAY_MAC, trace.device_ip, "203.0.113.77")
        )
        assert allowed.allowed
        assert not blocked.allowed

    def test_early_break_from_results_still_delivers_all_verdicts(
        self, trained_identifier, simulator
    ):
        # A consumer that stops iterating after the first verdict must not
        # leave the remaining devices unidentified at the gateway.
        source = SimulatedSource(
            device_names=["Aria", "HueBridge"],
            devices=4,
            arrival_gap=2.0,
            simulator=simulator,
        )
        delivered = []
        pipeline = StreamingPipeline(
            source=source,
            dispatcher=BatchDispatcher(trained_identifier, max_batch=2),
            on_identified=delivered.append,
        )
        results = pipeline.results()
        next(results)
        results.close()  # consumer walked away
        assert {item.mac for item in delivered} == set(source.device_macs)
        assert pipeline.stats.wall_seconds > 0

    def test_sticky_sink_never_downgrades_an_identified_device(
        self, trained_identifier, simulator
    ):
        from repro.identification.identifier import IdentificationResult, UNKNOWN_DEVICE_TYPE

        gateway = SecurityGateway()
        sink = GatewayEnforcementSink(
            gateway=gateway,
            security_service=IoTSecurityService(identifier=trained_identifier),
        )
        trace = simulator.simulate(DEVICE_CATALOG["EdnetCam"])
        fingerprint = Fingerprint.from_packets(trace.packets)
        sink(
            IdentifiedDevice(
                mac=trace.device_mac,
                fingerprint=fingerprint,
                result=trained_identifier.identify(fingerprint),
            )
        )
        assert gateway.device_record(trace.device_mac).device_type == "EdnetCam"

        # Steady-state chatter later assesses as unknown; the sticky sink
        # must not strip the device of its enforcement profile.
        unknown = IdentificationResult(device_type=UNKNOWN_DEVICE_TYPE, matched_types=())
        sink(IdentifiedDevice(mac=trace.device_mac, fingerprint=fingerprint, result=unknown))
        assert gateway.device_record(trace.device_mac).device_type == "EdnetCam"
        assert sink.skipped_downgrades == 1

        # A brand-new device with an unknown verdict is still enforced.
        other = make_device_mac(15)
        sink(IdentifiedDevice(mac=other, fingerprint=fingerprint, result=unknown))
        assert gateway.device_record(other).device_type == UNKNOWN_DEVICE_TYPE
        assert sink.enforced == 2

    def test_cache_hits_surface_in_pipeline_stats(self, trained_identifier, simulator):
        trace = simulator.simulate(DEVICE_CATALOG["HueBridge"], start_time=0.0)
        quiet = trace.packets[-1].timestamp
        clones = [
            replay_trace(trace, make_device_mac(index + 1), quiet + 60.0 * (index + 1))
            for index in range(2)
        ]
        source = SimulatedSource(traces=[trace, *clones])
        pipeline = StreamingPipeline(
            source=source,
            dispatcher=BatchDispatcher(
                trained_identifier, max_batch=1, cache=IdentificationCache()
            ),
        )
        stats = pipeline.run()
        assert stats.identified == 3
        assert stats.cache_hits == 2
        assert stats.cache_hit_rate == pytest.approx(2 / 3)

    def test_warm_cache_reports_per_run_stats(self, trained_identifier, simulator):
        # A cache shared across runs must not leak the first run's hits
        # into the second run's statistics.
        cache = IdentificationCache()
        trace = simulator.simulate(DEVICE_CATALOG["HueBridge"], start_time=0.0)
        quiet = trace.packets[-1].timestamp
        clone = replay_trace(trace, make_device_mac(11), quiet + 60.0)
        first = StreamingPipeline(
            source=SimulatedSource(traces=[trace, clone]),
            dispatcher=BatchDispatcher(trained_identifier, max_batch=1, cache=cache),
        )
        assert first.run().cache_hits == 1

        fresh = simulator.simulate(DEVICE_CATALOG["Aria"])
        second = StreamingPipeline(
            source=SimulatedSource(traces=[fresh]),
            dispatcher=BatchDispatcher(trained_identifier, max_batch=1, cache=cache),
        )
        stats = second.run()
        assert stats.cache_hits == 0  # nothing cached matched this run
        assert stats.cache_misses == 1
        assert cache.hits == 1  # the lifetime counter still remembers run 1

        # Sharing the dispatcher itself must also keep timing per-run: a
        # third run served entirely from cache performs no classification.
        shared = BatchDispatcher(trained_identifier, max_batch=1, cache=cache)
        warmup = StreamingPipeline(
            source=SimulatedSource(traces=[simulator.simulate(DEVICE_CATALOG["EdnetCam"])]),
            dispatcher=shared,
        ).run()
        assert warmup.identify_seconds > 0
        cached_run = StreamingPipeline(
            source=SimulatedSource(traces=[clone]), dispatcher=shared
        ).run()
        assert cached_run.cache_hits == 1
        assert cached_run.identify_seconds == 0.0  # run 1's time not leaked in


# --------------------------------------------------------------------- #
# Observability hub adoption between pipeline and dispatcher.
# --------------------------------------------------------------------- #
class TestHubAdoption:
    """Regression net for the hub adoption asymmetry in the pipeline ctor.

    The pipeline used to hand its hub down to a hub-less dispatcher but
    silently kept two hubs when the dispatcher arrived with its own --
    dispatcher counters then landed in one snapshot and pipeline/sink
    counters in another.  The rule is now symmetric: a lone hub (on
    either side) is adopted by the other, and two *different* hubs are a
    configuration error.
    """

    def _pipeline(self, trained_identifier, dispatcher, hub=None):
        from repro.obs import Observability  # local: keep module imports streaming-only

        return StreamingPipeline(
            source=IterableSource([]),
            dispatcher=dispatcher,
            observability=hub,
        )

    def test_pipeline_hub_adopted_by_bare_dispatcher(self, trained_identifier):
        from repro.obs import Observability

        hub = Observability()
        dispatcher = BatchDispatcher(trained_identifier)
        self._pipeline(trained_identifier, dispatcher, hub=hub)
        assert dispatcher.observability is hub

    def test_dispatcher_hub_adopted_by_bare_pipeline(self, trained_identifier):
        from repro.obs import Observability

        hub = Observability()
        dispatcher = BatchDispatcher(trained_identifier, observability=hub)
        pipeline = self._pipeline(trained_identifier, dispatcher)
        assert pipeline.observability is hub

    def test_two_different_hubs_raise_instead_of_splitting_metrics(
        self, trained_identifier
    ):
        from repro.obs import Observability

        dispatcher = BatchDispatcher(trained_identifier, observability=Observability())
        with pytest.raises(SimulationError, match="two different"):
            self._pipeline(trained_identifier, dispatcher, hub=Observability())

    def test_single_hub_sees_both_layers_counters(self, trained_identifier, simulator):
        from repro.obs import Observability

        hub = Observability()
        dispatcher = BatchDispatcher(trained_identifier, max_batch=1, observability=hub)
        pipeline = StreamingPipeline(
            source=SimulatedSource(traces=[simulator.simulate(DEVICE_CATALOG["Aria"])]),
            dispatcher=dispatcher,
            observability=hub,
        )
        pipeline.run()
        snapshot = hub.snapshot()
        assert snapshot["dispatcher.identified"] == 1
        assert snapshot["assembler.fingerprints_emitted"] == 1
