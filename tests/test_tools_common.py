"""tools/_common: the shared gate-script plumbing."""

from __future__ import annotations

import pytest

from tools._common import chain_files, load_json, report


class TestChainFiles:
    def test_orders_rotations_numerically_oldest_first(self, tmp_path):
        active = tmp_path / "ledger.ndjson"
        # .10 must sort after .2 (numeric, not lexicographic), and the
        # chain reads oldest (highest generation) to newest (active).
        for suffix in ("2", "10", "1"):
            (tmp_path / f"ledger.ndjson.{suffix}").write_text("{}\n")
        active.write_text("{}\n")
        names = [file.name for file in chain_files(active)]
        assert names == [
            "ledger.ndjson.10",
            "ledger.ndjson.2",
            "ledger.ndjson.1",
            "ledger.ndjson",
        ]

    def test_ignores_non_numeric_suffixes_and_missing_active(self, tmp_path):
        active = tmp_path / "ledger.ndjson"
        (tmp_path / "ledger.ndjson.bak").write_text("{}\n")
        (tmp_path / "ledger.ndjson.1").write_text("{}\n")
        names = [file.name for file in chain_files(active)]
        assert names == ["ledger.ndjson.1"]


class TestReport:
    def test_clean_report_exits_zero(self, capsys):
        assert report("gate", [], ok_label="5 things checked") == 0
        assert capsys.readouterr().out == "gate: OK (5 things checked)\n"

    def test_errors_exit_one_with_one_line_each(self, capsys):
        code = report("gate", ["first", "second"], warnings=["heads up"])
        out = capsys.readouterr().out.splitlines()
        assert code == 1
        assert out == [
            "warning: heads up",
            "error: first",
            "error: second",
            "gate: FAILED (2 problem(s))",
        ]

    def test_failed_line_keeps_an_informative_label(self, capsys):
        report("gate", ["boom"], ok_label="3 records across 1 file(s)")
        out = capsys.readouterr().out
        assert "gate: FAILED (1 problem(s), 3 records across 1 file(s))" in out

    def test_warnings_alone_stay_clean(self, capsys):
        assert report("gate", [], warnings=["only a warning"]) == 0
        assert "warning: only a warning" in capsys.readouterr().out


class TestLoadJson:
    def test_loads_document(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text('{"ok": true}')
        assert load_json(path) == {"ok": True}

    def test_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            load_json(tmp_path / "absent.json", what="baseline")

    def test_invalid_json_exits(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text("not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            load_json(path)
