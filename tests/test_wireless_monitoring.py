"""Tests for the WPS key manager and the device monitor."""

import pytest

from repro.exceptions import EnforcementError
from repro.gateway.enforcement import NetworkOverlay
from repro.gateway.monitoring import DeviceMonitor
from repro.gateway.wireless import WPSKeyManager
from repro.net.addresses import MACAddress

from tests.conftest import make_udp_packet

DEVICE = MACAddress.from_string("02:00:00:00:00:31")
GATEWAY = MACAddress.from_string("02:00:00:00:00:01")


class TestWPSKeyManager:
    def test_issue_and_verify(self):
        manager = WPSKeyManager()
        credential = manager.issue(DEVICE)
        assert manager.verify(DEVICE, credential.psk)
        assert not manager.verify(DEVICE, "wrong")
        assert manager.credential_of(DEVICE) == credential
        assert len(manager) == 1

    def test_keys_are_device_specific(self):
        manager = WPSKeyManager()
        first = manager.issue(MACAddress(1))
        second = manager.issue(MACAddress(2))
        assert first.psk != second.psk

    def test_rekey_moves_overlay_and_rotates_psk(self):
        manager = WPSKeyManager()
        original = manager.issue(DEVICE, overlay=NetworkOverlay.UNTRUSTED)
        rekeyed = manager.rekey(DEVICE, overlay=NetworkOverlay.TRUSTED, now=5.0)
        assert rekeyed.overlay is NetworkOverlay.TRUSTED
        assert rekeyed.psk != original.psk
        assert not manager.verify(DEVICE, original.psk)
        assert manager.verify(DEVICE, rekeyed.psk)
        assert manager.rekey_count == 1

    def test_rekey_unknown_device_rejected(self):
        with pytest.raises(EnforcementError):
            WPSKeyManager().rekey(DEVICE, overlay=NetworkOverlay.TRUSTED)

    def test_revoke(self):
        manager = WPSKeyManager()
        credential = manager.issue(DEVICE)
        assert manager.revoke(DEVICE)
        assert not manager.verify(DEVICE, credential.psk)
        assert not manager.revoke(MACAddress(99))

    def test_psk_fingerprint_is_not_the_psk(self):
        manager = WPSKeyManager()
        credential = manager.issue(DEVICE)
        assert credential.fingerprint != credential.psk
        assert len(credential.fingerprint) == 12


class TestDeviceMonitor:
    def _packet(self, timestamp, dst_ip="8.8.8.8"):
        packet = make_udp_packet(DEVICE, GATEWAY, "192.168.0.20", dst_ip)
        packet.timestamp = timestamp
        return packet

    def test_monitoring_starts_on_first_packet(self):
        monitor = DeviceMonitor()
        assert monitor.observe(self._packet(0.0)) is None
        assert monitor.is_monitoring(DEVICE)
        assert monitor.packet_count(DEVICE) == 1
        assert DEVICE in monitor.monitored_devices

    def test_finalize_produces_fingerprint(self):
        monitor = DeviceMonitor()
        for index in range(5):
            monitor.observe(self._packet(index * 0.2, dst_ip=f"8.8.8.{index + 1}"))
        fingerprint = monitor.finalize(DEVICE)
        assert fingerprint is not None
        assert fingerprint.packet_count == 5
        assert not monitor.is_monitoring(DEVICE)

    def test_finalize_twice_returns_none(self):
        monitor = DeviceMonitor()
        monitor.observe(self._packet(0.0))
        assert monitor.finalize(DEVICE) is not None
        assert monitor.finalize(DEVICE) is None

    def test_finalize_unknown_device(self):
        assert DeviceMonitor().finalize(DEVICE) is None

    def test_idle_timeout_completes_capture(self):
        monitor = DeviceMonitor(idle_timeout=10.0)
        for index in range(4):
            monitor.observe(self._packet(index * 0.5, dst_ip=f"1.1.1.{index + 1}"))
        fingerprint = monitor.observe(self._packet(100.0))
        assert fingerprint is not None
        assert fingerprint.packet_count == 4

    def test_max_packets_completes_capture(self):
        monitor = DeviceMonitor(max_packets=6)
        fingerprint = None
        for index in range(10):
            fingerprint = monitor.observe(self._packet(index * 0.1, dst_ip=f"2.2.2.{index + 1}"))
            if fingerprint is not None:
                break
        assert fingerprint is not None
        assert not monitor.is_monitoring(DEVICE)

    def test_packets_after_completion_ignored(self):
        monitor = DeviceMonitor(max_packets=3)
        for index in range(3):
            monitor.observe(self._packet(index * 0.1, dst_ip=f"3.3.3.{index + 1}"))
        assert monitor.observe(self._packet(1.0)) is None

    def test_forget(self):
        monitor = DeviceMonitor()
        monitor.observe(self._packet(0.0))
        monitor.forget(DEVICE)
        assert not monitor.is_monitoring(DEVICE)
        assert monitor.packet_count(DEVICE) == 0
