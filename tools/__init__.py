"""Repository tooling: CI gate scripts and the repro-lint framework.

Everything in here is deliberately stdlib-only so the gates run on any
CI runner or operator laptop without installing the package (numpy
included).  The scripts are dual-mode: importable as ``tools.<name>``
(what the test suite does) and runnable directly as
``python tools/<name>.py`` (what CI does).
"""
