"""Shared plumbing of the stdlib-only gate scripts under ``tools/``.

Every checker in this directory follows the same contract -- collect
``errors`` (fatal) and ``warnings`` (informational), print one line per
problem, exit 0 when clean and 1 otherwise -- and two of them walk the
same rotated ledger chain.  That boilerplate used to be copy-pasted per
script; it lives here now so a fix lands everywhere at once.

The module must stay importable both as ``tools._common`` (package
context, used by the test suite and ``python -m tools.lint``) and as
``_common`` (script context, when CI runs ``python tools/check_X.py``
and ``sys.path[0]`` is ``tools/``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Repository root, for repo-relative paths in reports.
REPO_ROOT = Path(__file__).resolve().parent.parent


def chain_files(active: Path) -> list[Path]:
    """Every existing file of a rotated ledger chain, oldest first.

    Mirrors :func:`repro.obs.ledger.ledger_files` without importing
    ``repro`` (the gates must not trust the code they validate): rotated
    generations ``<name>.N .. <name>.1`` precede the active file.  The
    directory scan is sorted before the numeric ordering is applied so
    the walk itself is filesystem-order independent.
    """
    rotated: list[tuple[int, Path]] = []
    for candidate in sorted(active.parent.glob(active.name + ".*")):
        suffix = candidate.name[len(active.name) + 1 :]
        if suffix.isdigit():
            rotated.append((int(suffix), candidate))
    files = [file for _, file in sorted(rotated, reverse=True)]
    if active.exists():
        files.append(active)
    return files


def load_json(path: Path, *, what: str = "file") -> dict:
    """Read a JSON document or exit 2 with a one-line diagnosis.

    For inputs whose *absence or corruption* is a usage error (a missing
    benchmark baseline, a mangled report), not a finding the checker
    should count.
    """
    try:
        with path.open(encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        sys.exit(f"error: {what} not found: {path}")
    except json.JSONDecodeError as error:
        sys.exit(f"error: {path} is not valid JSON: {error}")


def report(
    tool: str,
    errors: list[str],
    warnings: list[str] | None = None,
    ok_label: str = "clean",
) -> int:
    """Print the shared errors/warnings epilogue; return the exit code.

    One ``warning:`` line per warning, one ``error:`` line per error,
    then a single summary line -- ``<tool>: OK (<ok_label>)`` or
    ``<tool>: FAILED (N problem(s), <ok_label>)`` -- so CI logs from
    every gate read the same way.  A custom ``ok_label`` usually carries
    progress stats ("33 records across 4 file(s)") worth printing even
    on failure; the default "clean" is suppressed there.
    """
    for warning in warnings or []:
        print(f"warning: {warning}")
    for error in errors:
        print(f"error: {error}")
    if errors:
        detail = f", {ok_label}" if ok_label != "clean" else ""
        print(f"{tool}: FAILED ({len(errors)} problem(s){detail})")
        return 1
    print(f"{tool}: OK ({ok_label})")
    return 0
