#!/usr/bin/env python3
"""Throughput-regression guard for ``BENCH_streaming_throughput.json``.

Compares a freshly produced benchmark trajectory file against the
committed baseline and fails (exit 1) only on a real regression of a
machine-independent metric.  Dependency-free (stdlib only) so it runs on
any CI runner.

Two classes of metric are checked:

* **Guarded ratios** -- same-process comparisons such as
  ``columnar_datapath.speedup_over_scalar`` (batched pipeline vs the
  per-packet reference on the same machine, same run).  These cancel out
  host speed, so a drop beyond the tolerance (default 30%) is a genuine
  datapath regression and hard-fails.
* **Advisory absolutes** -- raw ``packets_per_second`` numbers.  These
  are whatever the current host can do; a CI container is not the
  machine that recorded the committed baseline, so they are printed and
  compared but never fail the build on their own.

Usage::

    python tools/check_bench_regression.py \
        --baseline BENCH_streaming_throughput.json \
        --current bench-results/BENCH_streaming_throughput.json \
        [--tolerance 0.30]

Sections missing from either file are skipped with a note (a quick-mode
smoke run produces every section, but a lone re-run of one benchmark
rewrites the file with only its own section).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    from tools._common import load_json, report
except ImportError:  # script context: `python tools/check_bench_regression.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _common import load_json, report

#: (section, metric) pairs whose regression beyond the tolerance fails the
#: build.  All are same-run ratios, immune to host-speed differences.
GUARDED_RATIOS = (
    ("columnar_datapath", "speedup_over_scalar"),
)

#: (section, metric) pairs reported for trend visibility only.
ADVISORY_ABSOLUTES = (
    ("stream", "packets_per_second"),
    ("columnar_datapath", "packets_per_second"),
    ("columnar_datapath", "scalar_packets_per_second"),
)


def metric(document: dict, section: str, name: str):
    body = document.get(section)
    if not isinstance(body, dict):
        return None
    value = body.get(name)
    return value if isinstance(value, (int, float)) else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_streaming_throughput.json")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly produced benchmark file to vet")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="fractional regression allowed on guarded "
                             "ratios before hard failure (default 0.30)")
    args = parser.parse_args(argv)

    baseline = load_json(args.baseline, what="baseline benchmark file")
    current = load_json(args.current, what="current benchmark file")
    failures = []

    print(f"baseline: {args.baseline}  (recorded {baseline.get('recorded_at', '?')}, "
          f"quick_mode={baseline.get('quick_mode')})")
    print(f"current:  {args.current}  (recorded {current.get('recorded_at', '?')}, "
          f"quick_mode={current.get('quick_mode')})")
    print()

    for section, name in GUARDED_RATIOS:
        base = metric(baseline, section, name)
        now = metric(current, section, name)
        label = f"{section}.{name}"
        if base is None or now is None:
            print(f"SKIP  {label}: missing in "
                  f"{'baseline' if base is None else 'current'} file")
            continue
        floor = base * (1.0 - args.tolerance)
        verdict = "ok" if now >= floor else "REGRESSION"
        print(f"{'FAIL' if now < floor else 'ok':4.4}  {label}: "
              f"{now:.3f} vs baseline {base:.3f} "
              f"(floor {floor:.3f}, tolerance {args.tolerance:.0%}) -- {verdict}")
        if now < floor:
            failures.append(
                f"{label} regressed beyond {args.tolerance:.0%}: "
                f"{now:.3f} < {floor:.3f} (baseline {base:.3f})"
            )

    print()
    for section, name in ADVISORY_ABSOLUTES:
        base = metric(baseline, section, name)
        now = metric(current, section, name)
        label = f"{section}.{name}"
        if base is None or now is None:
            print(f"SKIP  {label}: missing in "
                  f"{'baseline' if base is None else 'current'} file")
            continue
        delta = (now - base) / base if base else 0.0
        print(f"info  {label}: {now:,.0f} vs baseline {base:,.0f} "
              f"({delta:+.0%}, advisory -- host speeds differ)")

    print()
    return report("check_bench_regression", failures, ok_label="guarded ratios within tolerance")


if __name__ == "__main__":
    sys.exit(main())
