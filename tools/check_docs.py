#!/usr/bin/env python3
"""Docs integrity checker: nav completeness and internal link resolution.

A dependency-free stand-in for ``mkdocs build --strict`` that runs
anywhere the repository does (CI runs both; the test suite runs this).
Checks:

* every page listed in ``mkdocs.yml``'s nav exists under ``docs/``;
* every markdown file under ``docs/`` is reachable from the nav;
* every relative markdown link in ``docs/*.md`` and ``README.md``
  resolves to an existing file (http/https/mailto links are skipped);
* a ``file.md#anchor`` link targets a heading that actually exists in
  the destination page (GitHub-style slugs);
* every ``examples/...`` or ``benchmarks/...`` path mentioned in the
  docs refers to a file that exists.

Exit status 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

try:
    from tools._common import REPO_ROOT, report
except ImportError:  # script context: `python tools/check_docs.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _common import REPO_ROOT, report

DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"

#: ``[text](target)`` -- good enough for the hand-written docs here
#: (no nested brackets, no reference-style links).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: ``- Title: page.md`` or ``- page.md`` inside the nav block.
_NAV_ENTRY_RE = re.compile(r"^\s*-\s+(?:[^:\n]+:\s*)?(\S+\.md)\s*$")
#: Inline code mentioning a repo-relative script, e.g. `examples/foo.py`.
_SCRIPT_RE = re.compile(r"`((?:examples|benchmarks|tools)/[\w./-]+\.py)`")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def nav_pages(mkdocs_yml: Path = MKDOCS_YML) -> list[str]:
    """The .md files referenced from the mkdocs nav block."""
    pages: list[str] = []
    in_nav = False
    for line in mkdocs_yml.read_text(encoding="utf-8").splitlines():
        if re.match(r"^nav\s*:", line):
            in_nav = True
            continue
        if in_nav:
            if line.strip() and not line.startswith((" ", "\t", "-")):
                break  # the next top-level key ends the nav block
            match = _NAV_ENTRY_RE.match(line)
            if match:
                pages.append(match.group(1))
    return pages


def heading_slugs(markdown: str) -> set[str]:
    """GitHub/mkdocs-style anchor slugs of every heading in a page."""
    slugs = set()
    for title in _HEADING_RE.findall(markdown):
        # Strip inline code/links, lowercase, spaces to dashes, drop the rest.
        text = re.sub(r"[`*_]|\[([^\]]*)\]\([^)]*\)", r"\1", title).strip().lower()
        slugs.add(re.sub(r"[^\w\- ]", "", text).replace(" ", "-"))
    return slugs


def check_file_links(md_file: Path, errors: list[str]) -> None:
    content = md_file.read_text(encoding="utf-8")
    for target in _LINK_RE.findall(content):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        destination = md_file if not path_part else (md_file.parent / path_part)
        if not destination.exists():
            errors.append(f"{md_file.relative_to(REPO_ROOT)}: broken link -> {target}")
            continue
        if anchor and destination.suffix == ".md":
            if anchor not in heading_slugs(destination.read_text(encoding="utf-8")):
                errors.append(
                    f"{md_file.relative_to(REPO_ROOT)}: broken anchor -> {target}"
                )
    for script in _SCRIPT_RE.findall(content):
        if not (REPO_ROOT / script).exists():
            errors.append(
                f"{md_file.relative_to(REPO_ROOT)}: references missing file {script}"
            )


def collect_errors() -> list[str]:
    errors: list[str] = []
    if not MKDOCS_YML.exists():
        return ["mkdocs.yml is missing"]
    pages = nav_pages()
    if not pages:
        errors.append("mkdocs.yml: nav block lists no pages")
    for page in pages:
        if not (DOCS_DIR / page).exists():
            errors.append(f"mkdocs.yml: nav entry {page} does not exist in docs/")
    for md_file in sorted(DOCS_DIR.glob("**/*.md")):
        relative = str(md_file.relative_to(DOCS_DIR))
        if relative not in pages:
            errors.append(f"docs/{relative}: not reachable from the mkdocs nav")
    for md_file in [*sorted(DOCS_DIR.glob("**/*.md")), REPO_ROOT / "README.md"]:
        if md_file.exists():
            check_file_links(md_file, errors)
    return errors


def main() -> int:
    return report("check_docs", collect_errors(), ok_label="nav, links and anchors resolve")


if __name__ == "__main__":
    raise SystemExit(main())
