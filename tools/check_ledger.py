#!/usr/bin/env python3
"""Evidence-ledger validator: schema, monotonic sequence, epoch consistency.

A dependency-free (stdlib-only) checker for the NDJSON verdict ledger
written by :mod:`repro.obs` -- it runs anywhere the file does, including
a CI runner or an operator's laptop with no numpy installed, which is
why it deliberately re-implements the validation instead of importing
``repro``.  Checks, across the whole rotated chain (``ledger.ndjson.N``
.. ``ledger.ndjson.1``, then the active file):

* every line parses as JSON and carries ``schema`` 1, a known ``kind``
  and no unknown keys;
* sequence numbers strictly increase across the chain;
* ``cache_epoch`` stamps never decrease (the epoch counter is monotonic,
  so a decrease means interleaved ledgers or clock-skewed processes);
* every verdict record carries the fields needed to reconstruct the
  decision: ``fingerprint_key`` and ``identifier_revision``.

The one tolerated defect is an unterminated, undecodable final line of
the *active* file -- the state a mid-append crash leaves behind; it is
reported as a warning, not an error.

Usage: ``python tools/check_ledger.py path/to/ledger.ndjson``
Exit status 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

try:
    from tools._common import chain_files, report
except ImportError:  # script context: `python tools/check_ledger.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _common import chain_files, report

SCHEMA_VERSION = 1
KINDS = {"verdict", "enforcement", "quarantine", "learn", "promotion", "push", "apply"}
RECORD_KEYS = {
    "schema",
    "sequence",
    "kind",
    "stream_time",
    "mac",
    "fingerprint_key",
    "verdict",
    "matched_types",
    "provenance",
    "identifier_revision",
    "cache_epoch",
    "enforcement_action",
    "from_cache",
    "completion_reason",
    "detail",
}


def check_record(payload: object, where: str, errors: list[str]) -> dict | None:
    """Structural checks on one decoded line; returns the record or None."""
    if not isinstance(payload, dict):
        errors.append(f"{where}: record is not a JSON object")
        return None
    unknown = set(payload) - RECORD_KEYS
    if unknown:
        errors.append(f"{where}: unknown keys {sorted(unknown)}")
    if payload.get("schema") != SCHEMA_VERSION:
        errors.append(f"{where}: unsupported schema {payload.get('schema')!r}")
        return None
    kind = payload.get("kind")
    if kind not in KINDS:
        errors.append(f"{where}: unknown kind {kind!r}")
        return None
    sequence = payload.get("sequence")
    if not isinstance(sequence, int) or isinstance(sequence, bool) or sequence < 0:
        errors.append(f"{where}: invalid sequence {sequence!r}")
        return None
    if kind == "verdict":
        for field in ("fingerprint_key", "identifier_revision", "verdict", "mac"):
            if payload.get(field) is None:
                errors.append(f"{where}: verdict record missing {field}")
    if kind in ("push", "apply"):
        # Fleet-distribution records must be auditable: which model
        # (revision), which watermark (cache_epoch), and the channel
        # detail (push id, bundle path / gateway, applied flag).
        for field in ("identifier_revision", "cache_epoch", "detail"):
            if payload.get(field) is None:
                errors.append(f"{where}: {kind} record missing {field}")
    return payload


def check_ledger(active: Path) -> tuple[int, list[str], list[str]]:
    """Validate a ledger chain; returns (records, errors, warnings)."""
    errors: list[str] = []
    warnings: list[str] = []
    files = chain_files(active)
    if not files:
        return 0, [f"no ledger found at {active}"], warnings

    records = 0
    previous_sequence = None
    previous_epoch = None
    for file_index, file in enumerate(files):
        is_last_file = file_index == len(files) - 1
        text = file.read_text(encoding="utf-8")
        terminated = text.endswith("\n")
        lines = text.splitlines()
        for line_index, line in enumerate(lines):
            where = f"{file.name}:{line_index + 1}"
            unterminated_tail = (
                is_last_file and line_index == len(lines) - 1 and not terminated
            )
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if unterminated_tail:
                    warnings.append(f"{where}: truncated final line (crash artefact)")
                    continue
                errors.append(f"{where}: malformed JSON")
                continue
            record = check_record(payload, where, errors)
            if record is None:
                continue
            records += 1
            sequence = record["sequence"]
            if previous_sequence is not None and sequence <= previous_sequence:
                errors.append(
                    f"{where}: sequence {sequence} does not increase "
                    f"(previous was {previous_sequence})"
                )
            previous_sequence = sequence
            epoch = record.get("cache_epoch")
            if epoch is not None:
                if not isinstance(epoch, int) or isinstance(epoch, bool):
                    errors.append(f"{where}: cache_epoch {epoch!r} is not an integer")
                elif previous_epoch is not None and epoch < previous_epoch:
                    errors.append(
                        f"{where}: cache_epoch {epoch} decreased "
                        f"(previous was {previous_epoch})"
                    )
                else:
                    previous_epoch = epoch
    if records == 0:
        errors.append(f"{active}: ledger chain contains no records")
    return records, errors, warnings


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_ledger.py path/to/ledger.ndjson", file=sys.stderr)
        return 2
    active = Path(argv[1])
    records, errors, warnings = check_ledger(active)
    files = len(chain_files(active))
    return report(
        "check_ledger",
        errors,
        warnings,
        ok_label=f"{records} valid records across {files} file(s)",
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv))
