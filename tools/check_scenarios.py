#!/usr/bin/env python3
"""Scenario-artifact validator: schema, evidence reconciliation, determinism.

A dependency-free (stdlib-only) checker for the per-scenario artifacts
written by :mod:`repro.scenarios` -- like ``check_ledger.py``, it runs
anywhere the files do (CI runner, operator laptop, no numpy) and
deliberately re-implements the contract instead of importing ``repro``,
so a bug in the harness cannot hide itself from the gate.

Validate mode checks every ``report.json`` run directory under a path:

* ``report.json`` parses, carries ``schema`` 1, and its ``run_name``
  matches both the directory name and ``<scenario>__seed-<seed>``;
* the metrics block carries every contract section (misidentification,
  quarantine, autopilot, enforcement, backpressure, ledger,
  reconciliation) and every reconciliation flag is true;
* ``devices.csv`` agrees row-for-row with the report's ``devices`` list;
* the run's evidence-ledger chain parses, its per-kind counts equal the
  report's ``ledger`` section, and **every claimed misidentification is
  backed by a verdict record** for that MAC carrying that verdict --
  no claim without an :class:`EvidenceRecord` trail.

Compare mode (``--compare A B``) asserts two runs of the same seed are
byte-identical over the contract set -- ``report.json``,
``devices.csv``, suite manifests and the ledger chain; ``scratch/``
material (e.g. model bundles, whose zip container embeds timestamps) is
excluded by design.

Usage::

    python tools/check_scenarios.py path/to/runs
    python tools/check_scenarios.py --compare runs-a runs-b

Exit status 0 when clean; 1 with one line per problem; 2 on usage.
"""

from __future__ import annotations

import argparse
import csv
import hashlib
import json
import sys
from pathlib import Path

try:
    from tools._common import chain_files, report
except ImportError:  # script context: `python tools/check_scenarios.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _common import chain_files, report

SCHEMA_VERSION = 1
UNKNOWN = "unknown"
PROVISIONAL_PREFIX = "unknown-model-"
METRIC_SECTIONS = (
    "devices",
    "identified",
    "unassessed",
    "misidentified",
    "misidentification_rate",
    "quarantine",
    "autopilot",
    "enforcement",
    "backpressure",
    "ledger",
    "reconciliation",
    "snapshot",
)
CSV_COLUMNS = (
    "mac",
    "role",
    "true_type",
    "expected",
    "verdict",
    "isolation",
    "quarantined",
    "misidentified",
    "ledger_backed",
)
#: Files that make up the byte-stable contract of a run directory.
CONTRACT_NAMES = ("report.json", "devices.csv")


def is_contract_file(path: Path) -> bool:
    return (
        path.name in CONTRACT_NAMES
        or "ledger.ndjson" in path.name
        or (path.name.startswith("suite__seed-") and path.name.endswith(".json"))
    )


def read_ledger(active: Path, errors: list[str]) -> list[dict]:
    """Decode a ledger chain leniently; structural depth is check_ledger's job."""
    records: list[dict] = []
    for file in chain_files(active):
        for line_index, line in enumerate(file.read_text(encoding="utf-8").splitlines()):
            where = f"{file.name}:{line_index + 1}"
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                errors.append(f"{where}: malformed JSON in ledger")
                continue
            if isinstance(payload, dict):
                records.append(payload)
            else:
                errors.append(f"{where}: ledger record is not a JSON object")
    return records


def find_runs(root: Path) -> list[Path]:
    """Every scenario run directory (holds a report.json) under ``root``."""
    if (root / "report.json").exists():
        return [root]
    return sorted(path.parent for path in root.glob("*/report.json"))


def check_run(run_dir: Path, errors: list[str]) -> None:
    where = run_dir.name
    report_path = run_dir / "report.json"
    try:
        report = json.loads(report_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"{where}: cannot read report.json ({exc})")
        return
    if report.get("schema") != SCHEMA_VERSION:
        errors.append(f"{where}: unsupported schema {report.get('schema')!r}")
        return

    scenario = report.get("scenario")
    seed = report.get("seed")
    run_name = report.get("run_name")
    expected_name = f"{scenario}__seed-{seed}"
    if run_name != expected_name:
        errors.append(f"{where}: run_name {run_name!r} != {expected_name!r}")
    if run_dir.name != run_name:
        errors.append(f"{where}: directory name does not match run_name {run_name!r}")

    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        errors.append(f"{where}: metrics block missing")
        return
    for section in METRIC_SECTIONS:
        if section not in metrics:
            errors.append(f"{where}: metrics missing {section!r}")
    reconciliation = metrics.get("reconciliation", {})
    for flag, value in sorted(reconciliation.items()) if isinstance(reconciliation, dict) else []:
        if value is not True:
            errors.append(f"{where}: reconciliation flag {flag} is {value!r}")

    devices = report.get("devices")
    if not isinstance(devices, list):
        errors.append(f"{where}: devices list missing")
        return
    if isinstance(metrics.get("devices"), int) and metrics["devices"] != len(devices):
        errors.append(
            f"{where}: metrics.devices {metrics['devices']} != {len(devices)} device rows"
        )
    _check_csv(run_dir, devices, where, errors)
    _check_evidence(run_dir, report, metrics, devices, where, errors)


def _check_csv(run_dir: Path, devices: list, where: str, errors: list[str]) -> None:
    csv_path = run_dir / "devices.csv"
    if not csv_path.exists():
        errors.append(f"{where}: devices.csv missing")
        return
    with csv_path.open(encoding="utf-8", newline="") as stream:
        rows = list(csv.reader(stream))
    if not rows or tuple(rows[0]) != CSV_COLUMNS:
        errors.append(f"{where}: devices.csv header mismatch")
        return
    if len(rows) - 1 != len(devices):
        errors.append(
            f"{where}: devices.csv has {len(rows) - 1} rows, report has {len(devices)}"
        )
        return
    for index, (row, device) in enumerate(zip(rows[1:], devices)):
        expected_row = [
            "" if device.get(column) is None else str(device.get(column))
            for column in CSV_COLUMNS
        ]
        if row != expected_row:
            errors.append(f"{where}: devices.csv row {index + 1} disagrees with report.json")


def _check_evidence(
    run_dir: Path,
    report: dict,
    metrics: dict,
    devices: list,
    where: str,
    errors: list[str],
) -> None:
    ledger_name = report.get("artifacts", {}).get("ledger")
    if not isinstance(ledger_name, str):
        errors.append(f"{where}: artifacts.ledger missing")
        return
    active = run_dir / ledger_name
    if not chain_files(active):
        errors.append(f"{where}: ledger chain {ledger_name} not found")
        return
    records = read_ledger(active, errors)
    counts: dict[str, int] = {}
    verdict_trail: dict[str, set[str]] = {}
    for record in records:
        kind = record.get("kind")
        counts[kind] = counts.get(kind, 0) + 1
        # Verdict records back dispatcher-path verdicts; enforcement
        # records back sink-applied ones (the reprofile path), mirroring
        # repro.scenarios.base scoring.
        if kind in ("verdict", "enforcement") and record.get("mac") is not None:
            if record.get("verdict") is not None:
                verdict_trail.setdefault(record["mac"], set()).add(record["verdict"])

    ledger_metrics = metrics.get("ledger", {})
    for kind in ("verdict", "enforcement", "quarantine", "learn"):
        claimed = ledger_metrics.get(f"{kind}_records")
        actual = counts.get(kind, 0)
        if claimed != actual:
            errors.append(
                f"{where}: report claims {claimed} {kind} records, ledger has {actual}"
            )

    misidentified = 0
    for device in devices:
        mac = device.get("mac")
        verdict = device.get("verdict")
        claimed_wrong = device.get("misidentified")
        # Recompute the misidentification predicate from ground truth --
        # the report must not be able to hide a wrong verdict.
        wrong = (
            verdict not in (None, "", UNKNOWN)
            and not str(verdict).startswith(PROVISIONAL_PREFIX)
            and verdict != device.get("expected")
        )
        if bool(claimed_wrong) != wrong:
            errors.append(f"{where}: device {mac} misidentified flag disagrees with truth")
        if wrong:
            misidentified += 1
            if verdict not in verdict_trail.get(mac, set()):
                errors.append(
                    f"{where}: misidentification of {mac} as {verdict!r} "
                    "has no backing verdict record in the ledger"
                )
    if isinstance(metrics.get("misidentified"), int) and metrics["misidentified"] != misidentified:
        errors.append(
            f"{where}: metrics.misidentified {metrics['misidentified']} != {misidentified} recomputed"
        )


def compare_runs(dir_a: Path, dir_b: Path, errors: list[str]) -> int:
    """Byte-compare the contract artifacts of two run trees."""

    def contract_map(root: Path) -> dict[str, Path]:
        return {
            str(path.relative_to(root)): path
            for path in sorted(root.rglob("*"))
            if path.is_file() and "scratch" not in path.relative_to(root).parts
            and is_contract_file(path)
        }

    files_a, files_b = contract_map(dir_a), contract_map(dir_b)
    for name in sorted(set(files_a) - set(files_b)):
        errors.append(f"compare: {name} only in {dir_a}")
    for name in sorted(set(files_b) - set(files_a)):
        errors.append(f"compare: {name} only in {dir_b}")
    compared = 0
    for name in sorted(set(files_a) & set(files_b)):
        compared += 1
        digest_a = hashlib.sha256(files_a[name].read_bytes()).hexdigest()
        digest_b = hashlib.sha256(files_b[name].read_bytes()).hexdigest()
        if digest_a != digest_b:
            errors.append(f"compare: {name} differs between runs (non-deterministic artifact)")
    if compared == 0:
        errors.append("compare: no contract artifacts found to compare")
    return compared


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_scenarios.py",
        description="Validate scenario artifacts and their evidence trails.",
    )
    parser.add_argument("paths", nargs="+", help="run directory/directories")
    parser.add_argument(
        "--compare",
        action="store_true",
        help="byte-compare two run trees instead of validating one",
    )
    args = parser.parse_args(argv)

    errors: list[str] = []
    if args.compare:
        if len(args.paths) != 2:
            print("usage: check_scenarios.py --compare DIR_A DIR_B", file=sys.stderr)
            return 2
        compared = compare_runs(Path(args.paths[0]), Path(args.paths[1]), errors)
        label = f"{compared} artifact(s) byte-compared"
    else:
        runs = [run for path in args.paths for run in find_runs(Path(path))]
        if not runs:
            print(f"error: no scenario runs found under {args.paths}")
            return 1
        for run_dir in runs:
            check_run(run_dir, errors)
        label = f"{len(runs)} run(s) validated"

    return report("check_scenarios", errors, ok_label=label)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
