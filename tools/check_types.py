#!/usr/bin/env python3
"""Typed-core gate: run mypy over the packages that promise full annotations.

The typed core is ``repro.net``, ``repro.obs`` and ``repro.fleet`` --
the wire-format, evidence and fleet-coordination layers, where a type
error means a corrupted artifact rather than a stack trace.  The
``[tool.mypy]`` table in ``pyproject.toml`` holds the per-module
strictness; this script only picks the targets and normalises the exit.

mypy is a dev dependency, not a runtime one.  When it is not installed
(minimal containers, the stdlib-only local loop) the gate *skips* with
exit 0 and says so -- CI installs ``.[dev]`` and therefore always runs
the real check.  Pass ``--require`` to turn a missing mypy into a
failure (what the CI job does, so a broken install cannot masquerade
as a pass).
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys

try:
    from tools._common import REPO_ROOT, report
except ImportError:  # running as `python tools/check_types.py`
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _common import REPO_ROOT, report

#: The packages the mypy gate is strict about, in lint order.
TYPED_CORE = (
    "src/repro/net",
    "src/repro/obs",
    "src/repro/fleet",
)


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 1) when mypy is not installed instead of skipping",
    )
    args = parser.parse_args(argv)

    if not mypy_available():
        if args.require:
            return report(
                "check_types",
                ["mypy is not installed but --require was passed (pip install '.[dev]')"],
            )
        print("check_types: SKIPPED (mypy not installed; pip install '.[dev]' to enable)")
        return 0

    command = [sys.executable, "-m", "mypy", *TYPED_CORE]
    completed = subprocess.run(command, cwd=REPO_ROOT)
    errors = [] if completed.returncode == 0 else [
        f"mypy exited {completed.returncode} on the typed core ({', '.join(TYPED_CORE)})"
    ]
    return report("check_types", errors, ok_label="typed core is clean")


if __name__ == "__main__":
    raise SystemExit(main())
