"""repro-lint: the project-specific determinism & invariant linter.

The reproduction rests on invariants the paper never had to state --
verdicts are bitwise-reproducible across processes and hash seeds, every
artifact is byte-identical per seed, every ledger claim is backed by a
typed evidence record.  The runtime suites prove those properties *after
the fact*; this package turns them into AST-level rules that fail in
review instead:

* :mod:`tools.lint.engine` -- the driver: ``Rule`` base class, per-file
  visitor dispatch, ``# repro-lint: disable=<rule> -- <reason>``
  suppressions (a missing reason is itself a finding);
* :mod:`tools.lint.config` -- which rules apply to which paths;
* :mod:`tools.lint.rules` -- the rule catalogue (see
  ``docs/development.md`` for the operator-facing reference);
* :mod:`tools.lint.reporters` -- text and JSON output.

Run it as ``python -m tools.lint src tools benchmarks``; exit status 0
when clean, 1 with one line per finding otherwise.  Stdlib-only by
design, like every gate under ``tools/``.
"""

from tools.lint.config import LintConfig
from tools.lint.engine import Finding, Rule, lint_paths, lint_source
from tools.lint.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfig",
    "Rule",
    "lint_paths",
    "lint_source",
]
