"""CLI entry point: ``python -m tools.lint [paths...]``.

Exit status 0 when every scanned file is clean, 1 with one line per
finding otherwise, 2 on usage errors -- the same contract as the other
gates under ``tools/``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.lint.config import LintConfig
from tools.lint.engine import lint_paths
from tools.lint.reporters import render_json, render_rule_list, render_text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="repro-lint: AST determinism & invariant linter",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools", "benchmarks"],
        help="files or directories to lint (default: src tools benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule reference (id, rationale, examples) and exit",
    )
    args = parser.parse_args(argv)

    config = LintConfig.default()
    if args.select:
        try:
            config = config.with_rules(
                [part.strip() for part in args.select.split(",") if part.strip()]
            )
        except ValueError as error:
            parser.error(str(error))

    if args.list_rules:
        print(render_rule_list(config.rules))
        return 0

    paths = [Path(path) for path in args.paths]
    missing = [path for path in paths if not path.exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(str(path) for path in missing)}")

    findings, files_scanned = lint_paths(paths, config)
    render = render_json if args.format == "json" else render_text
    print(render(findings, files_scanned), end="" if args.format == "json" else "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
