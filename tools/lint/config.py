"""Which repro-lint rules apply where.

Scopes are repo-relative path prefixes (posix form).  The defaults
encode the repository's actual contract boundaries:

* determinism rules bind the shipped package, benchmarks and examples
  -- anything whose output a seed is supposed to pin;
* the wall-clock ban exempts the benchmark harness (timing is its job)
  and the simulation clock module (it *is* the clock abstraction);
* artifact-canonicality binds every module that writes JSON to disk,
  which in this tree means all of ``src``, ``tools`` and ``benchmarks``;
* the ledger-kind rule exempts ``repro/obs/evidence.py`` itself -- the
  one module allowed to spell the kind strings, because it declares the
  constants everyone else must use.

Tests are deliberately out of scope: they exercise bad inputs on
purpose (unseeded generators, hostile JSON) and the suppression noise
would drown the signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from tools.lint.engine import Rule


@dataclass(frozen=True)
class RuleScope:
    """Path prefixes one rule binds (``include``) and exempts (``exclude``)."""

    include: tuple[str, ...]
    exclude: tuple[str, ...] = ()

    def matches(self, path: str) -> bool:
        return any(path.startswith(prefix) for prefix in self.include) and not any(
            path.startswith(prefix) for prefix in self.exclude
        )


#: Modules whose callers are external: raising a builtin ``ValueError``
#: here loses the typed :mod:`repro.exceptions` contract the facade
#: documents.  Used by the exception-hygiene rule.
PUBLIC_API_PREFIXES = (
    "src/repro/api.py",
    "src/repro/obs/",
    "src/repro/fleet/",
    "src/repro/streaming/",
)

_DEFAULT_SCOPES: dict[str, RuleScope] = {
    "no-unseeded-rng": RuleScope(include=("src/", "benchmarks/", "examples/")),
    "no-wallclock": RuleScope(
        include=("src/",),
        exclude=("src/repro/simulation/clock.py",),
    ),
    "canonical-artifact-json": RuleScope(include=("src/", "tools/", "benchmarks/")),
    "sorted-fs-iteration": RuleScope(
        include=("src/", "tools/", "benchmarks/", "examples/")
    ),
    "no-set-order-leak": RuleScope(include=("src/", "tools/", "benchmarks/")),
    "ledger-kind-constants": RuleScope(
        include=("src/",),
        exclude=("src/repro/obs/evidence.py",),
    ),
    "exception-hygiene": RuleScope(
        include=("src/", "tools/", "benchmarks/", "examples/")
    ),
    "export-sync": RuleScope(include=("src/",)),
}


@dataclass(frozen=True)
class LintConfig:
    """The rule set and the per-rule path scopes the driver applies."""

    rules: tuple[type["Rule"], ...]
    scopes: Mapping[str, RuleScope] = field(default_factory=dict)

    @classmethod
    def default(cls) -> "LintConfig":
        from tools.lint.rules import ALL_RULES

        return cls(rules=tuple(ALL_RULES), scopes=dict(_DEFAULT_SCOPES))

    def rules_for(self, path: str) -> list[type["Rule"]]:
        """The rule classes whose scope covers one repo-relative path.

        A rule with no configured scope applies everywhere -- new rules
        fail open (maximal coverage) rather than silently not running.
        """
        applicable = []
        for rule_cls in self.rules:
            scope = self.scopes.get(rule_cls.rule_id)
            if scope is None or scope.matches(path):
                applicable.append(rule_cls)
        return applicable

    def with_rules(self, rule_ids: Sequence[str]) -> "LintConfig":
        """A copy restricted to the named rules (the ``--select`` flag)."""
        wanted = set(rule_ids)
        unknown = wanted - {rule_cls.rule_id for rule_cls in self.rules}
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
        return LintConfig(
            rules=tuple(r for r in self.rules if r.rule_id in wanted),
            scopes=self.scopes,
        )
