"""The repro-lint driver: rules, findings, suppressions, file walking.

A :class:`Rule` is an :class:`ast.NodeVisitor` with identity metadata
(id, rationale, a bad/good example pair for the docs) that reports
:class:`Finding` objects through :meth:`Rule.report`.  The engine parses
each file once, runs every rule whose configured scope covers the file,
then drops findings answered by an inline suppression pragma::

    os.write(fd, data)  # repro-lint: disable=<rule-id> -- <why it is fine>

The reason after ``--`` is mandatory: a pragma without one does not
suppress anything and instead raises a ``bad-suppression`` finding,
which itself cannot be suppressed -- so every silenced rule in the tree
carries a written justification, checkable by ``grep``.

A pragma on its own line applies to the *next* source line (for call
sites too long to share a line with a comment); a trailing pragma
applies to its own line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from tools.lint.config import LintConfig

#: Rule id charset: short kebab-case slugs, e.g. ``no-unseeded-rng``.
_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9-]+$")

#: The suppression pragma.  ``disable=`` takes a comma-separated rule
#: list; everything after `` -- `` is the mandatory human reason.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[a-z0-9,\s-]+?)"
    r"(?:\s+--\s*(?P<reason>.*))?$"
)

#: The engine's own rule id for malformed/reason-less pragmas.
BAD_SUPPRESSION = "bad-suppression"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule(ast.NodeVisitor):
    """Base class of every repro-lint rule.

    Subclasses set the class attributes below and implement ``visit_*``
    methods calling :meth:`report`.  One rule instance is created per
    (file, rule) pair, so instance state is per-file by construction.

    Attributes:
        rule_id: the kebab-case identifier used in reports, config
            scopes and suppression pragmas.
        rationale: one sentence for ``--list-rules`` and the docs --
            *which repository invariant* the rule encodes.
        example_bad: a minimal snippet the rule fires on.
        example_good: the compliant rewrite of ``example_bad``.
    """

    rule_id: str = ""
    rationale: str = ""
    example_bad: str = ""
    example_good: str = ""

    def __init__(self, path: str, source: str):
        if not _RULE_ID_RE.match(type(self).rule_id):
            raise ValueError(f"{type(self).__name__}: invalid rule_id {type(self).rule_id!r}")
        self.path = path
        self.source = source
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=type(self).rule_id,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    def run(self, tree: ast.Module) -> list[Finding]:
        """Visit the tree; returns the findings collected on the way."""
        self.visit(tree)
        return self.findings


@dataclass(frozen=True)
class Suppression:
    """One parsed ``disable=`` pragma and the line range it covers."""

    rules: tuple[str, ...]
    reason: str
    pragma_line: int
    target_line: int


@dataclass
class SuppressionTable:
    """Every pragma in one file, plus the findings they are missing reasons for."""

    suppressions: list[Suppression] = field(default_factory=list)
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def covers(self, finding: Finding) -> bool:
        return any(
            finding.line == entry.target_line and finding.rule in entry.rules
            for entry in self.suppressions
        )


def _comment_tokens(source: str) -> list[tuple[int, str, bool]]:
    """``(line, text, standalone)`` for every real comment token.

    Tokenizing (rather than scanning lines) keeps pragma examples inside
    docstrings and string literals inert.  Tokenization errors are
    swallowed here -- the same file will fail ``ast.parse`` and surface
    as a ``syntax-error`` finding.
    """
    comments: list[tuple[int, str, bool]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                standalone = token.line.strip().startswith("#")
                comments.append((token.start[0], token.string, standalone))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def parse_suppressions(source: str) -> SuppressionTable:
    """Collect the suppression pragmas of one file from its comments.

    A pragma whose line holds nothing else applies to the *next* line;
    a trailing pragma applies to its own line.
    """
    table = SuppressionTable()
    for index, comment, standalone in _comment_tokens(source):
        if "repro-lint" not in comment:
            continue
        match = _PRAGMA_RE.search(comment)
        if match is None:
            # A comment mentioning repro-lint without the disable= form
            # is prose, not a pragma; leave it alone unless it claims to
            # be one (the "repro-lint:" prefix) and fails to parse.
            if re.search(r"#\s*repro-lint:", comment):
                table.malformed.append((index, "unparseable repro-lint pragma"))
            continue
        reason = (match.group("reason") or "").strip()
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        if not reason:
            table.malformed.append(
                (index, "suppression is missing its reason (use `disable=<rule> -- <why>`)")
            )
            continue
        if not rules:
            table.malformed.append((index, "suppression names no rules"))
            continue
        table.suppressions.append(
            Suppression(
                rules=rules,
                reason=reason,
                pragma_line=index,
                target_line=index + 1 if standalone else index,
            )
        )
    return table


def lint_source(
    source: str,
    path: str,
    rules: Iterable[type[Rule]],
) -> list[Finding]:
    """Run a set of rules over one file's source text.

    Returns surviving findings: syntax errors come back as a single
    ``syntax-error`` finding (a file the linter cannot parse cannot be
    vetted, so it fails loudly), suppressed findings are dropped, and
    malformed or reason-less pragmas are appended as ``bad-suppression``
    findings that no pragma can silence.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                rule="syntax-error",
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                message=f"file does not parse: {error.msg}",
            )
        ]
    table = parse_suppressions(source)
    findings: list[Finding] = []
    for rule_cls in rules:
        findings.extend(rule_cls(path, source).run(tree))
    surviving = [finding for finding in findings if not table.covers(finding)]
    surviving.extend(
        Finding(rule=BAD_SUPPRESSION, path=path, line=line, col=1, message=message)
        for line, message in table.malformed
    )
    return surviving


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Every ``*.py`` file under the given paths, sorted, caches excluded."""
    files: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.add(path)
        elif path.is_dir():
            files.update(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
    return sorted(files)


#: Top-level directories that anchor scope matching for files outside the
#: repository (e.g. fixture trees under a pytest tmp_path).
_SCOPE_ANCHORS = ("src", "tools", "benchmarks", "examples", "tests")


def _scope_path(file: Path, root: Path) -> str:
    """The repo-relative posix path scopes match against and reports print.

    A file outside ``root`` (a fixture tree in a temp directory) is
    anchored at its first recognised top-level component, so a
    ``<tmp>/src/repro/bad.py`` fixture is scoped exactly like
    ``src/repro/bad.py`` in the real tree.
    """
    resolved = file.resolve()
    try:
        return resolved.relative_to(root).as_posix()
    except ValueError:
        pass
    parts = resolved.parts
    for anchor in _SCOPE_ANCHORS:
        if anchor in parts:
            return "/".join(parts[parts.index(anchor):])
    return file.as_posix()


def lint_paths(
    paths: Iterable[Path],
    config: "LintConfig",
    root: Optional[Path] = None,
) -> tuple[list[Finding], int]:
    """Lint every python file under ``paths``; returns (findings, files scanned).

    ``root`` anchors the repo-relative paths that scopes match against
    and reports print; it defaults to the repository root so the tool
    behaves identically from any working directory.
    """
    root = root if root is not None else Path(__file__).resolve().parent.parent.parent
    findings: list[Finding] = []
    files = iter_python_files(paths)
    for file in files:
        applicable = config.rules_for(_scope_path(file, root))
        if not applicable:
            continue
        source = file.read_text(encoding="utf-8")
        findings.extend(lint_source(source, _scope_path(file, root), applicable))
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.col, finding.rule))
    return findings, len(files)
