"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Iterable

from tools.lint.engine import Finding

#: Schema version of the JSON report; bump on layout changes.
REPORT_SCHEMA_VERSION = 1


def render_text(findings: list[Finding], files_scanned: int) -> str:
    """One ``path:line:col: [rule] message`` line per finding + summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(f"{rule}: {count}" for rule, count in sorted(by_rule.items()))
        lines.append(
            f"repro-lint: FAILED ({len(findings)} finding(s) across "
            f"{files_scanned} file(s) -- {breakdown})"
        )
    else:
        lines.append(f"repro-lint: OK ({files_scanned} file(s) clean)")
    return "\n".join(lines)


def render_json(findings: list[Finding], files_scanned: int) -> str:
    """The findings as a canonical JSON document (sorted keys, stable bytes)."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    document = {
        "schema": REPORT_SCHEMA_VERSION,
        "tool": "repro-lint",
        "files_scanned": files_scanned,
        "findings": [finding.to_dict() for finding in findings],
        "counts": counts,
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def render_rule_list(rules: Iterable[type]) -> str:
    """The ``--list-rules`` reference: id, rationale, example pair."""
    blocks = []
    for rule_cls in rules:
        blocks.append(
            "\n".join(
                [
                    rule_cls.rule_id,
                    f"  {rule_cls.rationale}",
                    f"  bad:  {rule_cls.example_bad}",
                    f"  good: {rule_cls.example_good}",
                ]
            )
        )
    return "\n\n".join(blocks)
