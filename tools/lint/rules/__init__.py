"""The repro-lint rule catalogue.

Grouped by the invariant family they encode:

* :mod:`tools.lint.rules.determinism` -- entropy and wall-clock bans
  (``no-unseeded-rng``, ``no-wallclock``);
* :mod:`tools.lint.rules.artifacts` -- byte-stable artifact output
  (``canonical-artifact-json``, ``sorted-fs-iteration``,
  ``no-set-order-leak``);
* :mod:`tools.lint.rules.hygiene` -- API contracts
  (``ledger-kind-constants``, ``exception-hygiene``, ``export-sync``).

``ALL_RULES`` is the shipped order; reports sort by location, so the
order only affects ``--list-rules``.
"""

from tools.lint.rules.artifacts import (
    CanonicalArtifactJson,
    NoSetOrderLeak,
    SortedFsIteration,
)
from tools.lint.rules.determinism import NoUnseededRng, NoWallclock
from tools.lint.rules.hygiene import ExceptionHygiene, ExportSync, LedgerKindConstants

ALL_RULES = (
    NoUnseededRng,
    NoWallclock,
    CanonicalArtifactJson,
    SortedFsIteration,
    NoSetOrderLeak,
    LedgerKindConstants,
    ExceptionHygiene,
    ExportSync,
)

__all__ = [
    "ALL_RULES",
    "CanonicalArtifactJson",
    "ExceptionHygiene",
    "ExportSync",
    "LedgerKindConstants",
    "NoSetOrderLeak",
    "NoUnseededRng",
    "NoWallclock",
    "SortedFsIteration",
]
