"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Optional


def dotted_chain(node: ast.expr) -> Optional[list[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name expressions.

    Only pure ``Name``/``Attribute`` chains resolve -- a chain hanging
    off a call or subscript (``x().y``, ``d[k].z``) returns None, which
    every caller treats as "not the pattern I am looking for".
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def build_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Child-to-parent map for ancestry questions the visitor API can't answer."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def has_sorted_ancestor(
    node: ast.AST, parents: dict[ast.AST, ast.AST], limit: int = 6
) -> bool:
    """True when the expression feeds a ``sorted(...)`` call within a few hops.

    The hop limit keeps the question local: ``sorted(p.glob(x))`` and
    ``sorted(f.name for f in p.iterdir())`` qualify; a sort happening
    three statements later does not (and should be rewritten so the scan
    site itself is visibly ordered).
    """
    current = node
    for _ in range(limit):
        parent = parents.get(current)
        if parent is None or isinstance(parent, ast.stmt):
            return False
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ("sorted", "min", "max", "sum", "len", "set", "frozenset")
        ):
            # sorted() restores order; min/max/sum/len/set are
            # order-insensitive consumers, so the scan cannot leak order.
            return True
        current = parent
    return False


def keyword_value(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None
