"""Byte-stable artifact rules: canonical JSON, ordered filesystem walks,
no set-order leaks.

The scenario/ledger gates assert byte-identical artifacts per seed
(``check_scenarios.py --compare``); these rules pin the three mundane
ways a byte diff sneaks in -- JSON key order, directory scan order, and
hash-order iteration of sets.
"""

from __future__ import annotations

import ast

from tools.lint.engine import Finding, Rule
from tools.lint.rules._ast_util import (
    build_parents,
    dotted_chain,
    has_sorted_ancestor,
    keyword_value,
)


class CanonicalArtifactJson(Rule):
    """``json.dump(s)`` must fix both key order and layout."""

    rule_id = "canonical-artifact-json"
    rationale = (
        "Artifacts are compared byte-for-byte across runs and hash seeds; a "
        "json.dump without sort_keys=True leaks dict insertion order, and "
        "one without an explicit layout (separators= or indent=) changes "
        "bytes when the default layout does."
    )
    example_bad = "path.write_text(json.dumps(document))"
    example_good = 'path.write_text(json.dumps(document, sort_keys=True, separators=(",", ":")))'

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_chain(node.func)
        if chain is not None and len(chain) == 2 and chain[0] == "json" and chain[1] in (
            "dump",
            "dumps",
        ):
            label = ".".join(chain)
            sort_keys = keyword_value(node, "sort_keys")
            if not (isinstance(sort_keys, ast.Constant) and sort_keys.value is True):
                self.report(
                    node,
                    f"{label}() without sort_keys=True serialises dict "
                    "insertion order; canonical artifacts sort keys",
                )
            elif keyword_value(node, "separators") is None and keyword_value(node, "indent") is None:
                self.report(
                    node,
                    f"{label}() relies on the default layout; pass "
                    'separators=(",", ":") (compact) or an explicit indent',
                )
        self.generic_visit(node)


#: ``module.function`` filesystem scans whose result order is OS-defined.
_FS_FUNCTION_CHAINS = {
    ("os", "listdir"),
    ("os", "scandir"),
    ("glob", "glob"),
    ("glob", "iglob"),
}

#: Method names that scan a directory on any receiver (``Path`` API).
_FS_METHOD_NAMES = {"iterdir", "glob", "rglob"}


class SortedFsIteration(Rule):
    """Directory scans are OS-order; wrap them in ``sorted(...)`` at the scan site."""

    rule_id = "sorted-fs-iteration"
    rationale = (
        "os.listdir / Path.iterdir / glob return filesystem order, which "
        "differs between machines and even between runs; every scan that "
        "feeds artifact content or processing order must be sorted where it "
        "happens, so the ordering is visible at the call site."
    )
    example_bad = "for path in run_dir.iterdir():"
    example_good = "for path in sorted(run_dir.iterdir()):"

    def run(self, tree: ast.Module) -> list[Finding]:
        self._parents = build_parents(tree)
        return super().run(tree)

    def visit_Call(self, node: ast.Call) -> None:
        label = None
        chain = dotted_chain(node.func)
        if chain is not None and len(chain) == 2 and tuple(chain) in _FS_FUNCTION_CHAINS:
            label = ".".join(chain)
        elif isinstance(node.func, ast.Attribute) and node.func.attr in _FS_METHOD_NAMES:
            label = f"<path>.{node.func.attr}"
        elif chain is not None and len(chain) == 2 and tuple(chain) == ("os", "walk"):
            self.report(
                node,
                "os.walk yields OS-ordered dirnames/filenames; sort both "
                "lists explicitly at the walk site",
            )
        if label is not None and not has_sorted_ancestor(node, self._parents):
            self.report(
                node,
                f"{label}() result order is filesystem-defined; wrap the scan "
                "in sorted(...) at the call site",
            )
        self.generic_visit(node)


#: Builtins that materialise their argument's iteration order.
_ORDER_MATERIALISERS = {"list", "tuple", "enumerate", "iter"}


class NoSetOrderLeak(Rule):
    """Iterating a set into ordered output leaks hash order."""

    rule_id = "no-set-order-leak"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED and insertion "
        "history; looping over a set (or list()-ing one) into any ordered "
        "output breaks the cross-hash-seed determinism gate.  Membership "
        "tests and set algebra are fine -- only iteration order leaks."
    )
    example_bad = "for mac in {r.mac for r in records}:"
    example_good = "for mac in sorted({r.mac for r in records}):"

    def run(self, tree: ast.Module) -> list[Finding]:
        self._parents = build_parents(tree)
        return super().run(tree)

    def _is_set_expression(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _flag(self, node: ast.expr, context: str) -> None:
        if not has_sorted_ancestor(node, self._parents):
            self.report(
                node,
                f"set iterated {context} leaks hash order; wrap it in "
                "sorted(...) before iterating",
            )

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expression(node.iter):
            self._flag(node.iter, "by a for loop")
        self.generic_visit(node)

    def _visit_comprehension_like(self, node: ast.AST) -> None:
        for generator in node.generators:
            if self._is_set_expression(generator.iter):
                self._flag(generator.iter, "by a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_like
    visit_GeneratorExp = _visit_comprehension_like
    visit_DictComp = _visit_comprehension_like

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Iterating a set *into another set* cannot leak order.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_MATERIALISERS
            and node.args
            and self._is_set_expression(node.args[0])
        ):
            self._flag(node.args[0], f"through {node.func.id}()")
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and self._is_set_expression(node.args[0])
        ):
            self._flag(node.args[0], "through str.join()")
        self.generic_visit(node)
