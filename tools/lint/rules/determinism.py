"""Entropy and wall-clock rules: the bit-reproducibility invariants.

PR 5 and PR 8 made verdict streams bitwise-identical across processes,
restarts and ``PYTHONHASHSEED`` values; these rules keep the two classic
ways of breaking that -- fresh OS entropy and the wall clock -- out of
the shipped code paths.
"""

from __future__ import annotations

import ast

from tools.lint.engine import Rule
from tools.lint.rules._ast_util import dotted_chain

#: numpy.random attributes that are *types/constructors*, not draws from
#: the legacy global generator -- calling these is not a determinism leak
#: by itself (seeding is checked separately for ``default_rng``).
_NP_RANDOM_NON_GLOBAL = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",
}

#: stdlib ``random`` attributes that construct an object rather than draw
#: from the hidden module-global generator.
_STDLIB_RANDOM_CONSTRUCTORS = {"Random", "SystemRandom"}


class NoUnseededRng(Rule):
    """Every generator in shipped code must be constructed from an explicit seed."""

    rule_id = "no-unseeded-rng"
    rationale = (
        "Verdicts and artifacts are bit-reproducible per seed; a generator "
        "built from OS entropy (default_rng() with no seed, the stdlib or "
        "numpy module-global draws, SystemRandom) silently breaks the "
        "replay/determinism gates."
    )
    example_bad = "rng = np.random.default_rng()"
    example_good = "rng = np.random.default_rng(derive_seed(seed, 'macs'))"

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_chain(node.func)
        if chain is not None:
            self._check_chain(node, chain)
        self.generic_visit(node)

    def _check_chain(self, node: ast.Call, chain: list[str]) -> None:
        name = chain[-1]
        # default_rng() / np.random.default_rng() / numpy.random.default_rng()
        if name == "default_rng":
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "default_rng() without a seed draws OS entropy; pass an "
                    "explicit seed (or a derived one) so the stream replays",
                )
            return
        if len(chain) >= 2 and chain[-2] == "random":
            if len(chain) == 2 and chain[0] == "random":
                # stdlib random module: module-global draws are seeded (if at
                # all) by distant code; constructors need an explicit seed.
                if name in _STDLIB_RANDOM_CONSTRUCTORS:
                    if name == "SystemRandom":
                        self.report(
                            node,
                            "random.SystemRandom draws OS entropy and can never "
                            "be made reproducible",
                        )
                    elif not node.args:
                        self.report(
                            node,
                            "random.Random() without a seed draws OS entropy; "
                            "pass an explicit seed",
                        )
                else:
                    self.report(
                        node,
                        f"random.{name}() draws from the hidden module-global "
                        "generator; use an explicitly seeded random.Random or "
                        "numpy Generator instead",
                    )
            elif name not in _NP_RANDOM_NON_GLOBAL:
                # np.random.<draw> / numpy.random.<draw>: the legacy global
                # RandomState, shared mutable process state.
                self.report(
                    node,
                    f"{'.'.join(chain)}() draws from numpy's legacy global "
                    "generator; construct np.random.default_rng(seed) and draw "
                    "from it",
                )


#: Wall-clock reads that are banned outright in ``src/``.
_BANNED_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
}

#: Wall-clock reads that are banned when called with no explicit instant.
_BANNED_NOARG_CALLS = {
    ("time", "localtime"),
    ("time", "gmtime"),
    ("time", "ctime"),
}

#: ``datetime``-style constructors of "now"; matched on the trailing two
#: chain elements so both ``datetime.now()`` (class imported) and
#: ``datetime.datetime.now()`` (module imported) are caught.
_BANNED_TAILS = {
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


class NoWallclock(Rule):
    """Shipped code computes with stream time, never the wall clock."""

    rule_id = "no-wallclock"
    rationale = (
        "Evidence records and scenario artifacts are byte-identical per seed "
        "because every timestamp is stream time (packet clocks) or a seeded "
        "simulation clock; one time.time()/datetime.now() makes artifacts "
        "differ between two otherwise identical runs.  Duration measurement "
        "belongs to time.perf_counter(), which is allowed."
    )
    example_bad = "record = {'at': time.time()}"
    example_good = "record = {'at': packet.timestamp}  # stream time"

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_chain(node.func)
        if chain is not None and len(chain) >= 2:
            tail = (chain[-2], chain[-1])
            label = ".".join(chain)
            if tail in _BANNED_CALLS:
                self.report(
                    node,
                    f"{label}() reads the wall clock; use stream time or the "
                    "simulation clock (perf_counter is fine for durations)",
                )
            elif tail in _BANNED_NOARG_CALLS and not node.args:
                self.report(
                    node,
                    f"{label}() with no argument reads the wall clock; pass an "
                    "explicit instant or use stream time",
                )
            elif tail in _BANNED_TAILS:
                self.report(
                    node,
                    f"{label}() reads the wall clock; artifacts stamped with it "
                    "cannot be byte-identical across runs",
                )
        self.generic_visit(node)
