"""API-contract rules: ledger vocabulary, exception discipline, export sync.

These encode contracts that are documented but were previously only
enforced by review: evidence-record kinds come from the declared
constants, errors cross the public boundary as typed
:mod:`repro.exceptions`, and a module's ``__all__`` tells the truth.
"""

from __future__ import annotations

import ast

from tools.lint.config import PUBLIC_API_PREFIXES
from tools.lint.engine import Rule
from tools.lint.rules._ast_util import dotted_chain


class LedgerKindConstants(Rule):
    """EvidenceRecord kinds are spelled once, in ``repro.obs.evidence``."""

    rule_id = "ledger-kind-constants"
    rationale = (
        "The evidence schema rejects unknown kinds at decode time; a typo'd "
        "kind string at a construction site becomes a runtime LedgerError in "
        "the serving path.  Constructing records with the KIND_* constants "
        "turns that into an import-time NameError instead."
    )
    example_bad = 'EvidenceRecord(kind="verdict", ...)'
    example_good = "EvidenceRecord(kind=KIND_VERDICT, ...)"

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_chain(node.func)
        if chain is not None and chain[-1] == "EvidenceRecord":
            kind = None
            if node.args:
                kind = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "kind":
                    kind = keyword.value
            if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
                self.report(
                    node,
                    f"EvidenceRecord kind={kind.value!r} spelled as a string "
                    "literal; use the KIND_* constants from repro.obs.evidence",
                )
        self.generic_visit(node)


#: Builtin exception types a public-API module must not raise directly --
#: callers of the facade catch :class:`repro.exceptions.ReproError`.
_BUILTIN_RAISES = {"ValueError", "TypeError", "KeyError", "RuntimeError", "IndexError"}


class ExceptionHygiene(Rule):
    """No bare excepts, no swallow-alls, typed errors at the public boundary."""

    rule_id = "exception-hygiene"
    rationale = (
        "A bare except (or an except-Exception-pass) hides the determinism "
        "and ledger errors the gates exist to surface; and the public facade "
        "documents typed repro.exceptions, so raising builtin ValueError "
        "there breaks the caller's advertised catch contract."
    )
    example_bad = "except:\n    pass"
    example_good = "except LedgerError as error:\n    raise ConfigError(...) from error"

    def __init__(self, path: str, source: str):
        super().__init__(path, source)
        self._public_api = any(path.startswith(prefix) for prefix in PUBLIC_API_PREFIXES)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare `except:` catches SystemExit/KeyboardInterrupt too; "
                "name the exception types",
            )
        else:
            chain = dotted_chain(node.type)
            swallows = (
                chain is not None
                and chain[-1] in ("Exception", "BaseException")
                and len(node.body) == 1
                and isinstance(node.body[0], ast.Pass)
            )
            if swallows:
                self.report(
                    node,
                    f"`except {'.'.join(chain)}: pass` silently swallows every "
                    "error; handle or narrow it",
                )
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        chain = dotted_chain(target) if target is not None else None
        if chain is not None:
            name = chain[-1]
            if name in ("Exception", "BaseException"):
                self.report(
                    node,
                    f"raising bare {name} is uncatchable-by-type; raise a "
                    "repro.exceptions subclass",
                )
            elif self._public_api and name in _BUILTIN_RAISES:
                self.report(
                    node,
                    f"public-API module raises builtin {name}; raise the "
                    "matching repro.exceptions type so callers can catch "
                    "ReproError",
                )
        self.generic_visit(node)


class ExportSync(Rule):
    """``__all__`` must agree with what the module actually binds."""

    rule_id = "export-sync"
    rationale = (
        "A name in __all__ that the module never binds breaks "
        "`from package import *` and lies to readers; a public name a "
        "package __init__ imports but omits from __all__ is an accidental, "
        "undeclared re-export that drifts out of the documented API."
    )
    example_bad = '__all__ = ["Gone"]  # Gone is never imported or defined'
    example_good = 'from repro.obs.evidence import KIND_PUSH\n__all__ = ["KIND_PUSH"]'

    def visit_Module(self, node: ast.Module) -> None:
        bound: set[str] = set()
        from_imported: list[tuple[str, ast.stmt]] = []
        declared: dict[str, ast.stmt] = {}
        duplicates: list[tuple[str, ast.stmt]] = []
        all_nodes: list[ast.stmt] = []

        def collect(statements: list[ast.stmt]) -> None:
            for statement in statements:
                if isinstance(statement, ast.Import):
                    for alias in statement.names:
                        bound.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(statement, ast.ImportFrom):
                    for alias in statement.names:
                        if alias.name == "*":
                            continue
                        name = alias.asname or alias.name
                        bound.add(name)
                        from_imported.append((name, statement))
                elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bound.add(statement.name)
                elif isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        statement.targets
                        if isinstance(statement, ast.Assign)
                        else [statement.target]
                    )
                    for target in targets:
                        for element in ast.walk(target):
                            if isinstance(element, ast.Name):
                                bound.add(element.id)
                                if element.id == "__all__":
                                    all_nodes.append(statement)
                elif isinstance(statement, ast.If):
                    # TYPE_CHECKING blocks and version guards bind names too.
                    collect(statement.body)
                    collect(statement.orelse)
                elif isinstance(statement, ast.Try):
                    collect(statement.body)
                    collect(statement.orelse)
                    for handler in statement.handlers:
                        collect(handler.body)

        collect(node.body)

        for statement in all_nodes:
            value = statement.value
            if not isinstance(value, (ast.List, ast.Tuple)):
                continue
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    if element.value in declared:
                        duplicates.append((element.value, statement))
                    else:
                        declared[element.value] = statement

        if not all_nodes:
            return
        for name, statement in sorted(declared.items()):
            if name not in bound:
                self.report(
                    statement,
                    f"__all__ lists {name!r} but the module never binds it",
                )
        for name, statement in duplicates:
            self.report(statement, f"__all__ lists {name!r} twice")
        if self.path.endswith("__init__.py"):
            missing = sorted(
                {
                    name
                    for name, _ in from_imported
                    if not name.startswith("_") and name not in declared
                }
            )
            for name in missing:
                statement = next(stmt for n, stmt in from_imported if n == name)
                self.report(
                    statement,
                    f"package __init__ imports {name!r} but __all__ does not "
                    "declare it (accidental re-export)",
                )
